//! The compute engine behind the daemon: a bounded admission queue in
//! front of a worker pool, with a shared LRU result cache.
//!
//! Request flow for a compute endpoint:
//!
//! ```text
//! connection thread ──► result cache ──hit──► respond immediately
//!        │ miss
//!        ▼
//! bounded admission queue ──full──► 429 + Retry-After (backpressure)
//!        │
//!        ▼
//! worker pool (N threads) ──► compute (memoized profile pipeline)
//!        │                         │
//!        ▼                         ▼
//! reply channel (deadline)   insert into result cache
//! ```
//!
//! Workers insert into the cache *before* replying, so even a request
//! that times out against its deadline still warms the cache for the
//! next identical spec. The queue is a `sync_channel`, whose `try_send`
//! gives the non-blocking full check the 429 path needs.

use crate::routes;
use gem5prof::cache::LruCache;
use gem5prof::figures::Fidelity;
use gem5prof::spec::ExperimentSpec;
use gem5prof_chaos as chaos;
use gem5prof_obs as obs;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One unit of compute: everything a worker needs to produce a response
/// body. Cheap to clone into the queue.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Work {
    /// A paper figure (1..=15) at a fidelity.
    Figure(usize, Fidelity),
    /// A configuration table (1 or 2).
    Table(usize),
    /// A parameterized experiment.
    Experiment(ExperimentSpec),
}

impl Work {
    /// The canonical result-cache key.
    pub(crate) fn key(&self) -> String {
        match self {
            Work::Figure(n, f) => format!(
                "figure:fig{n:02}:{}",
                match f {
                    Fidelity::Quick => "quick",
                    Fidelity::Paper => "paper",
                }
            ),
            Work::Table(n) => format!("table:table{n}"),
            Work::Experiment(spec) => spec.canonical_key(),
        }
    }

    /// Runs the computation and renders the JSON body.
    fn compute(&self) -> String {
        match self {
            Work::Figure(n, f) => routes::figure_json(*n, *f),
            Work::Table(n) => routes::table_json_by_index(*n),
            Work::Experiment(spec) => routes::experiment_json(spec),
        }
    }
}

/// A queued job: the work plus the channel the requester waits on.
struct Job {
    work: Work,
    key: String,
    reply: mpsc::Sender<Result<Arc<String>, String>>,
    /// When the job entered the admission queue (queue-wait metric).
    enqueued: Instant,
}

/// Request-path instrumentation, registered in the process-wide metrics
/// registry. Names are interned there, so every engine in the process
/// shares the same series.
struct EngineMetrics {
    queue_wait: Arc<obs::Histogram>,
    compute: Arc<obs::Histogram>,
    lookup_hit: Arc<obs::Histogram>,
    lookup_miss: Arc<obs::Histogram>,
}

impl EngineMetrics {
    fn new() -> Self {
        let r = obs::global();
        let b = obs::metrics::duration_buckets();
        EngineMetrics {
            queue_wait: r.histogram(
                "served_queue_wait_seconds",
                "time a job spent in the admission queue before a worker picked it up",
                b,
            ),
            compute: r.histogram(
                "served_compute_seconds",
                "time a worker spent computing one job",
                b,
            ),
            lookup_hit: r.histogram_with(
                "served_cache_lookup_seconds",
                "result-cache lookup latency by outcome",
                b,
                &[("outcome", "hit")],
            ),
            lookup_miss: r.histogram_with(
                "served_cache_lookup_seconds",
                "result-cache lookup latency by outcome",
                b,
                &[("outcome", "miss")],
            ),
        }
    }
}

/// Outcome of submitting work to the engine.
pub(crate) enum Submission {
    /// Served from the result cache.
    Hit(Arc<String>),
    /// Enqueued; await the receiver (subject to the caller's deadline).
    Pending(Receiver<Result<Arc<String>, String>>),
    /// Admission queue full — answer 429.
    Busy,
    /// Engine is draining — answer 503.
    Draining,
}

/// Counters the `/stats` endpoint reports for the serving layer itself.
#[derive(Debug, Default)]
pub(crate) struct ServerStats {
    /// Requests parsed (any route, any outcome).
    pub requests: AtomicU64,
    /// Responses by status: 200/400/404/405/429/500/503/504/other.
    pub st_200: AtomicU64,
    pub st_400: AtomicU64,
    pub st_404: AtomicU64,
    pub st_405: AtomicU64,
    pub st_429: AtomicU64,
    pub st_500: AtomicU64,
    pub st_503: AtomicU64,
    pub st_504: AtomicU64,
    pub st_other: AtomicU64,
}

impl ServerStats {
    /// `/metrics` samples, read from the same atomics `/stats` reports:
    /// `gem5prof_served_requests_total` plus one
    /// `gem5prof_served_responses_total{status=…}` series per bucket.
    pub fn metric_samples(&self) -> Vec<obs::Sample> {
        let mut v = vec![obs::Sample::plain(
            "gem5prof_served_requests_total",
            "HTTP requests parsed (any route, any outcome)",
            obs::MetricKind::Counter,
            self.requests.load(Ordering::Relaxed) as f64,
        )];
        for (code, counter) in [
            ("200", &self.st_200),
            ("400", &self.st_400),
            ("404", &self.st_404),
            ("405", &self.st_405),
            ("429", &self.st_429),
            ("500", &self.st_500),
            ("503", &self.st_503),
            ("504", &self.st_504),
            ("other", &self.st_other),
        ] {
            v.push(obs::Sample {
                name: "gem5prof_served_responses_total".into(),
                help: "HTTP responses by status code".into(),
                kind: obs::MetricKind::Counter,
                labels: vec![("status".into(), code.into())],
                value: counter.load(Ordering::Relaxed) as f64,
            });
        }
        v
    }

    /// Records one response with the given status.
    pub fn count(&self, status: u16) {
        let slot = match status {
            200 => &self.st_200,
            400 => &self.st_400,
            404 => &self.st_404,
            405 => &self.st_405,
            429 => &self.st_429,
            500 => &self.st_500,
            503 => &self.st_503,
            504 => &self.st_504,
            _ => &self.st_other,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }
}

/// Corrupts a rendered body the way a torn buffer would: half the bytes
/// (on a char boundary) plus a marker, guaranteed not to parse as JSON.
fn poisoned(body: &str) -> String {
    let mut cut = body.len() / 2;
    while cut > 0 && !body.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}<<chaos-poison>>", &body[..cut])
}

/// The admission queue + worker pool + result cache.
pub(crate) struct Engine {
    /// Queue sender; taken (dropped) on drain so workers exit.
    tx: Mutex<Option<SyncSender<Job>>>,
    /// Rendered responses keyed by canonical spec.
    cache: Mutex<LruCache<String, Arc<String>>>,
    /// Jobs waiting in the queue.
    depth: AtomicUsize,
    /// Jobs queued or running.
    in_flight: AtomicUsize,
    /// Queue capacity (for `/stats`).
    queue_cap: usize,
    /// Worker count (for `/stats`).
    workers: usize,
    /// Worker threads, joined on drain.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Request-path histograms (shared series in the global registry).
    metrics: EngineMetrics,
}

impl Engine {
    /// Starts `workers` worker threads behind a queue of `queue_cap`.
    ///
    /// `worker_delay` is a test hook: an artificial pause before each
    /// job, letting integration tests create queue-full conditions
    /// deterministically. Zero in production.
    pub fn start(
        workers: usize,
        queue_cap: usize,
        cache_cap: usize,
        worker_delay: Duration,
    ) -> Arc<Engine> {
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_cap);
        let rx = Arc::new(Mutex::new(rx));
        let engine = Arc::new(Engine {
            tx: Mutex::new(Some(tx)),
            cache: Mutex::new(LruCache::new(cache_cap)),
            depth: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            queue_cap,
            workers,
            handles: Mutex::new(Vec::new()),
            metrics: EngineMetrics::new(),
        });
        // Surface the result cache's counters in `/metrics` from the
        // same `CacheStats` the `/stats` endpoint reads. A `Weak` keeps
        // the forever-lived registry from pinning drained engines.
        let weak: Weak<Engine> = Arc::downgrade(&engine);
        obs::global().register_collector(Box::new(move || {
            let Some(engine) = weak.upgrade() else {
                return Vec::new();
            };
            let (snap, len, cap) = engine.cache_view();
            let mut samples = snap.metric_samples("gem5prof_result_cache");
            samples.push(obs::Sample::plain(
                "gem5prof_result_cache_entries",
                "rendered responses currently resident",
                obs::MetricKind::Gauge,
                len as f64,
            ));
            samples.push(obs::Sample::plain(
                "gem5prof_result_cache_capacity",
                "result-cache capacity in entries",
                obs::MetricKind::Gauge,
                cap as f64,
            ));
            samples
        }));
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let engine_w = Arc::clone(&engine);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("served-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing.
                        let job = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                            Ok(job) => job,
                            Err(_) => break, // sender dropped: drain complete
                        };
                        // The whole job scope is panic-isolated: a panic
                        // anywhere inside still decrements `in_flight`
                        // (drop guard in `process`) and drops the reply
                        // sender — which the requester observes as a 500 —
                        // and the worker thread survives to take the next
                        // job, so the pool never shrinks permanently.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                engine_w.process(job, worker_delay)
                            }));
                        if let Err(payload) = outcome {
                            if chaos::is_chaos_panic(payload.as_ref()) {
                                chaos::recovered("engine.worker_panic");
                            }
                        }
                    })
                    .expect("spawn worker"),
            );
        }
        *engine.handles.lock().unwrap_or_else(|e| e.into_inner()) = handles;
        engine
    }

    /// Handles one dequeued job on a worker thread. Runs inside the
    /// worker's `catch_unwind`; the drop guard keeps `in_flight` honest
    /// even if this panics mid-job.
    fn process(&self, job: Job, worker_delay: Duration) {
        struct InFlightGuard<'a>(&'a AtomicUsize);
        impl Drop for InFlightGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let _in_flight = InFlightGuard(&self.in_flight);
        self.depth.fetch_sub(1, Ordering::Relaxed);
        self.metrics
            .queue_wait
            .observe_duration(job.enqueued.elapsed());
        // Duplicate-key jobs pile up while the first one computes (every
        // concurrent miss enqueues); serve them from the cache instead of
        // recomputing, so a burst of identical cold requests costs one
        // compute and a drain never grinds through stale duplicates.
        let cached = self
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&job.key);
        if let Some(body) = cached {
            let _ = job.reply.send(Ok(body));
            return;
        }
        if chaos::inject("engine.worker_panic") {
            // Deliberately outside the compute `catch_unwind`: proves the
            // worker loop survives panics on its own paths too.
            panic!("chaos: injected worker panic");
        }
        if let Some(d) = chaos::delay("engine.job_delay") {
            std::thread::sleep(d);
            chaos::recovered("engine.job_delay");
        }
        if !worker_delay.is_zero() {
            std::thread::sleep(worker_delay);
        }
        let compute_started = Instant::now();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = obs::span("serve_compute");
            if chaos::inject("engine.job_panic") {
                panic!("chaos: injected job panic");
            }
            let body = job.work.compute();
            if chaos::inject("engine.job_poison") {
                poisoned(&body)
            } else {
                body
            }
        }));
        self.metrics
            .compute
            .observe_duration(compute_started.elapsed());
        let reply = match result {
            Ok(body) => {
                // Validate before caching: every compute endpoint renders
                // JSON, so a body that does not parse is a torn/poisoned
                // result and must never become a cache entry other
                // requests would then be served. The parse only runs with
                // chaos armed — production pays nothing.
                if chaos::enabled() && crate::minjson::parse(&body).is_err() {
                    chaos::recovered("engine.job_poison");
                    Err(format!(
                        "poisoned result for `{}` detected and discarded",
                        job.key
                    ))
                } else {
                    let body = Arc::new(body);
                    self.cache
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(job.key.clone(), Arc::clone(&body));
                    Ok(body)
                }
            }
            Err(payload) => {
                if chaos::is_chaos_panic(payload.as_ref()) {
                    chaos::recovered("engine.job_panic");
                }
                Err(format!("computation for `{}` panicked", job.key))
            }
        };
        let _ = job.reply.send(reply); // requester may have timed out
    }

    /// Submits work: cache lookup, then bounded enqueue.
    pub fn submit(&self, work: Work) -> Submission {
        let key = work.key();
        let lookup_started = Instant::now();
        let hit = self
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key);
        match &hit {
            Some(_) => &self.metrics.lookup_hit,
            None => &self.metrics.lookup_miss,
        }
        .observe_duration(lookup_started.elapsed());
        if let Some(body) = hit {
            return Submission::Hit(body);
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let guard = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        let Some(tx) = guard.as_ref() else {
            return Submission::Draining;
        };
        // Count before the send so `depth`/`in_flight` never under-read.
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(Job {
            work,
            key,
            reply: reply_tx,
            enqueued: Instant::now(),
        }) {
            Ok(()) => Submission::Pending(reply_rx),
            Err(TrySendError::Full(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                self.in_flight.fetch_sub(1, Ordering::Relaxed);
                Submission::Busy
            }
            Err(TrySendError::Disconnected(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                self.in_flight.fetch_sub(1, Ordering::Relaxed);
                Submission::Draining
            }
        }
    }

    /// Drains the engine: stops admitting, lets queued and running jobs
    /// complete, joins the workers.
    pub fn drain(&self) {
        drop(self.tx.lock().unwrap_or_else(|e| e.into_inner()).take());
        let handles: Vec<_> = self
            .handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Jobs waiting in the queue right now.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Jobs queued or running right now.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Queue capacity.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot + length of the result cache.
    pub fn cache_view(&self) -> (gem5prof::cache::CacheSnapshot, usize, usize) {
        let c = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        (c.stats().snapshot(), c.len(), c.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_submission_is_a_hit() {
        let engine = Engine::start(2, 4, 16, Duration::ZERO);
        let work = Work::Table(1);
        let rx = match engine.submit(work.clone()) {
            Submission::Pending(rx) => rx,
            _ => panic!("first submission must enqueue"),
        };
        let body = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("worker reply")
            .expect("table1 computes");
        assert!(body.contains("Table I"));
        match engine.submit(work) {
            Submission::Hit(b) => assert_eq!(*b, *body),
            _ => panic!("second submission must hit the cache"),
        }
        let (snap, len, _) = engine.cache_view();
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.insertions, 1);
        assert_eq!(len, 1);
        engine.drain();
    }

    #[test]
    fn full_queue_reports_busy_and_drain_rejects() {
        // One very slow worker, queue of one: the second distinct job
        // sits in the queue, the third must bounce.
        let engine = Engine::start(1, 1, 16, Duration::from_millis(300));
        let _rx1 = match engine.submit(Work::Table(1)) {
            Submission::Pending(rx) => rx,
            _ => panic!("job 1 should enqueue"),
        };
        // Give the worker a moment to pick up job 1, freeing the queue slot.
        std::thread::sleep(Duration::from_millis(100));
        let _rx2 = match engine.submit(Work::Table(2)) {
            Submission::Pending(rx) => rx,
            _ => panic!("job 2 should enqueue"),
        };
        match engine.submit(Work::Figure(1, Fidelity::Quick)) {
            Submission::Busy => {}
            _ => panic!("job 3 should bounce off the full queue"),
        }
        engine.drain();
        assert_eq!(engine.in_flight(), 0, "drain must complete all work");
        match engine.submit(Work::Table(1)) {
            // Table 1 was computed during drain, so the cache may serve it.
            Submission::Hit(_) | Submission::Draining => {}
            _ => panic!("post-drain submissions must not enqueue"),
        }
    }
}
