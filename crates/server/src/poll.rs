//! Readiness primitives for the nonblocking server core: a thin
//! epoll wrapper over raw syscalls (no external crates, matching the
//! workspace's offline-safe policy) plus the wakeup pipe worker
//! threads use to hand completed results back to the poller thread.
//!
//! Linux gets real `epoll`; other unixes fall back to `poll(2)` with
//! the same API. The module is `pub` so the bench harness
//! (`loadgen --open-loop`) can drive thousands of client connections
//! from a single thread with the same readiness loop the server uses.

use std::io;
use std::os::fd::RawFd;
use std::sync::Arc;
use std::time::Duration;

/// One readiness event: the registered token plus what the fd is
/// ready for. `error` covers hangups and socket errors (always
/// reported, regardless of requested interest).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub error: bool,
}

// Syscalls shared by both backends. These link against the libc the
// std runtime already carries — no crate dependency (the same idiom
// `main.rs` uses for `signal`).
extern "C" {
    fn pipe(fds: *mut i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, ...) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
}

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: i32 = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: i32 = 0x0004;

#[cfg(target_os = "linux")]
const SOL_SOCKET: i32 = 1;
#[cfg(target_os = "linux")]
const SO_SNDBUF: i32 = 7;
#[cfg(target_os = "linux")]
const SO_RCVBUF: i32 = 8;
#[cfg(not(target_os = "linux"))]
const SOL_SOCKET: i32 = 0xffff;
#[cfg(not(target_os = "linux"))]
const SO_SNDBUF: i32 = 0x1001;
#[cfg(not(target_os = "linux"))]
const SO_RCVBUF: i32 = 0x1002;

/// Marks an fd nonblocking via `fcntl` (for fds std cannot configure,
/// like pipe ends).
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    unsafe {
        let flags = fcntl(fd, F_GETFL);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        if fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// Clamps a socket's kernel send buffer. Test/bench hook: a small
/// `SO_SNDBUF` makes write-deadline behavior deterministic without
/// megabytes of response data.
pub fn set_sndbuf(fd: RawFd, bytes: usize) {
    let v = bytes as i32;
    unsafe {
        let _ = setsockopt(
            fd,
            SOL_SOCKET,
            SO_SNDBUF,
            &v,
            std::mem::size_of::<i32>() as u32,
        );
    }
}

/// Clamps a socket's kernel receive buffer. Test hook: a stalled-reader
/// client shrinks its `SO_RCVBUF` so the server's send side backs up
/// after kilobytes instead of megabytes.
pub fn set_rcvbuf(fd: RawFd, bytes: usize) {
    let v = bytes as i32;
    unsafe {
        let _ = setsockopt(
            fd,
            SOL_SOCKET,
            SO_RCVBUF,
            &v,
            std::mem::size_of::<i32>() as u32,
        );
    }
}

/// Converts a poll timeout to the millisecond form both backends take:
/// `None` blocks forever; sub-millisecond waits round up so a due
/// deadline is never spun on.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            d.as_millis().min(i32::MAX as u128) as i32
                + i32::from(d.subsec_nanos() % 1_000_000 != 0)
        }
    }
}

// ---------------------------------------------------------------------
// Linux backend: epoll
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use super::*;

    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Level-triggered readiness over an epoll instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: i32,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(
            &self,
            op: i32,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            let mut events = EPOLLRDHUP;
            if readable {
                events |= EPOLLIN;
            }
            if writable {
                events |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, readable, writable)
        }

        pub fn modify(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, readable, writable)
        }

        pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            if unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Waits for readiness, appending into `out` (cleared first).
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let n = loop {
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        buf.as_mut_ptr(),
                        buf.len() as i32,
                        timeout_ms(timeout),
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            for ev in &buf[..n] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Portable unix fallback: poll(2)
// ---------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::*;
    use std::collections::HashMap;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    /// Level-triggered readiness rebuilt per wait from a registration
    /// map — O(n) per wake, fine for the connection counts non-Linux
    /// dev machines see.
    #[derive(Debug)]
    pub struct Poller {
        registered: HashMap<RawFd, (u64, bool, bool)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: HashMap::new(),
            })
        }

        pub fn add(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.registered.insert(fd, (token, readable, writable));
            Ok(())
        }

        pub fn modify(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.registered.insert(fd, (token, readable, writable));
            Ok(())
        }

        pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.remove(&fd);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let mut fds: Vec<PollFd> = self
                .registered
                .iter()
                .map(|(&fd, &(_, r, w))| PollFd {
                    fd,
                    events: if r { POLLIN } else { 0 } | if w { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = loop {
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
                if n >= 0 {
                    break n;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for pfd in &fds {
                if pfd.revents == 0 {
                    continue;
                }
                let (token, _, _) = self.registered[&pfd.fd];
                out.push(Event {
                    token,
                    readable: pfd.revents & POLLIN != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    error: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
compile_error!("the gem5prof-served readiness core requires a unix platform");

pub use sys::Poller;

// ---------------------------------------------------------------------
// Wakeup pipe
// ---------------------------------------------------------------------

/// The write end of the wakeup pipe, closed when the last clone drops.
#[derive(Debug)]
struct WriteEnd(i32);

impl Drop for WriteEnd {
    fn drop(&mut self) {
        unsafe {
            close(self.0);
        }
    }
}

/// Wakes a [`Poller`] blocked in `wait` from another thread. Clone
/// freely; engine workers and offload threads each hold one.
#[derive(Debug, Clone)]
pub struct Waker(Arc<WriteEnd>);

impl Waker {
    /// Best-effort one-byte write. A full pipe already guarantees a
    /// pending wakeup, so `EAGAIN` (like every other error here) is
    /// deliberately ignored.
    pub fn wake(&self) {
        let b = 1u8;
        unsafe {
            let _ = write(self.0 .0, &b, 1);
        }
    }
}

/// A nonblocking self-pipe: register [`read_fd`](WakePipe::read_fd)
/// for readability, hand [`waker`](WakePipe::waker)s to other threads,
/// and [`drain`](WakePipe::drain) on every readable event.
#[derive(Debug)]
pub struct WakePipe {
    read_fd: i32,
    write_end: Arc<WriteEnd>,
}

impl WakePipe {
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let (r, w) = (fds[0], fds[1]);
        let pipe = WakePipe {
            read_fd: r,
            write_end: Arc::new(WriteEnd(w)),
        };
        set_nonblocking(r)?;
        set_nonblocking(w)?;
        Ok(pipe)
    }

    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    pub fn waker(&self) -> Waker {
        Waker(Arc::clone(&self.write_end))
    }

    /// Consumes every queued wakeup byte.
    pub fn drain(&self) {
        let mut buf = [0u8; 256];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn wake_pipe_wakes_a_blocked_wait() {
        let mut poller = Poller::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        poller.add(pipe.read_fd(), 7, true, false).unwrap();
        let waker = pipe.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        let started = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "wakeup never arrived"
        );
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        pipe.drain();
        t.join().unwrap();
    }

    #[test]
    fn wait_times_out_with_no_events() {
        let mut poller = Poller::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        poller.add(pipe.read_fd(), 1, true, false).unwrap();
        let mut events = Vec::new();
        let started = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        assert!(started.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn repeated_wakes_coalesce_and_drain() {
        let mut poller = Poller::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        poller.add(pipe.read_fd(), 3, true, false).unwrap();
        let waker = pipe.waker();
        for _ in 0..1000 {
            waker.wake();
        }
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
        pipe.drain();
        // Fully drained: the next wait sees nothing.
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
    }
}
