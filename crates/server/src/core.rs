//! The nonblocking readiness core: one poller thread driving every
//! connection through a read → parse → route → write state machine.
//!
//! This replaces thread-per-connection serving (ROADMAP item 3): the
//! old model capped concurrency at OS thread count and let one slow
//! reader pin a thread through a multi-second compute. Here a single
//! thread owns all sockets via [`crate::poll::Poller`] (epoll on
//! Linux, `poll(2)` elsewhere); blocking work stays on threads —
//! the engine's worker pool for computes, a small offload pool for
//! cluster forwards — and completed results re-enter the loop through
//! a self-wake pipe.
//!
//! Per-connection guarantees the blocking core could not make:
//!
//! * a **read deadline** armed when the connection goes idle and *not*
//!   extended by partial request bytes, so a slow-loris drip-feeding
//!   headers is disconnected on schedule;
//! * a **write deadline** extended only by actual write progress, so a
//!   client that stops reading mid-response is disconnected instead of
//!   wedging a thread forever (the old `set_write_timeout` gap);
//! * a **connection cap**: accepts beyond `max_conns` get an immediate
//!   canned 503 + `Retry-After` instead of an unbounded thread;
//! * **accept-error backoff**: accept failures (EMFILE and friends)
//!   back off exponentially and are counted, instead of a hot 10ms
//!   retry loop.
//!
//! Accounting is exactly-once by construction: every parsed request
//! produces exactly one `count_response` — at response queue time for
//! replies (delivery failures don't un-count, matching the blocking
//! core), or as status `0` ("other") when a connection dies while its
//! compute is still pending. Saturation 503s are *not* counted in the
//! request/response balance: no request was ever parsed on those
//! connections.

use crate::http::{self, ParseStatus, Request};
use crate::poll::{self, Poller, WakePipe, Waker};
use crate::routes::{error_body, Reply};
use gem5prof_chaos as chaos;
use gem5prof_obs as obs;
use std::collections::HashMap;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poller token of the accept socket.
const LISTENER: u64 = 0;
/// Poller token of the self-wake pipe's read end.
const WAKEUP: u64 = 1;
/// First connection token; tokens are monotone and never reused, so a
/// stale event for a closed connection can never alias a new one.
const FIRST_CONN: u64 = 2;

/// Stop reading (and parsing pipelined requests) while this much
/// response data is still unflushed — per-connection memory stays
/// bounded no matter how fast the client pipelines.
const WBUF_SOFT_CAP: usize = 256 * 1024;
/// Hard cap on buffered request bytes; the parser's own line/body
/// limits reject anything near this, so hitting it means a flood.
const MAX_RBUF: usize = 2 * 1024 * 1024;
/// Cadence of streamed progress chunks while a compute is pending.
const STREAM_TICK: Duration = Duration::from_millis(200);
/// How long a drain waits for in-flight connections before forcing
/// them closed.
const DRAIN_GRACE: Duration = Duration::from_secs(10);
/// Upper bound on one `wait()` so the loop re-checks the drain flag
/// even if a wake is lost.
const IDLE_POLL: Duration = Duration::from_millis(500);

/// What the service wants done with one parsed request.
pub(crate) enum Dispatch {
    /// Answer immediately.
    Reply(Reply),
    /// A compute is in flight; the result arrives on `rx` (the engine
    /// wakes the core via its waker when it sends). `stream` requests
    /// a chunked response with progress lines while waiting.
    Pending {
        rx: Receiver<Result<Arc<String>, String>>,
        stream: bool,
    },
    /// Run this blocking closure on the offload pool (cluster
    /// forwards); the reply re-enters the loop via the wake pipe.
    Offload(Box<dyn FnOnce() -> Reply + Send>),
    /// Drop the connection without a response (chaos `server.conn_drop`;
    /// the service has already counted the outcome).
    Hangup,
}

/// The routing/accounting half a readiness core serves. One impl per
/// daemon flavor: the experiment server and the cluster router.
pub(crate) trait Service: Send + Sync + 'static {
    /// Routes one parsed request. Called on the poller thread: must
    /// not block (hand blocking work to `Pending`/`Offload`).
    fn dispatch(&self, req: Request) -> Dispatch;
    /// One successfully parsed request (any route, any outcome).
    fn count_request(&self);
    /// Exactly one per counted request; status `0` means the
    /// connection died before a response could be written.
    fn count_response(&self, status: u16);
    /// A malformed request (answered 400 by the core). Counting is
    /// service-specific: the experiment server counts request+400, the
    /// router historically counts neither.
    fn count_parse_error(&self);
    /// Drain flag; once true the core stops accepting and unwinds.
    fn draining(&self) -> bool;
    /// Deadline for `Pending`/`Offload` work (maps to 504).
    fn deadline(&self) -> Duration;
    /// Whether injected wire faults (`http.read`, `http.short_read`,
    /// `http.torn_write`) count as recovered when survived. The
    /// experiment server credits them; the router never did.
    fn recover_wire_chaos(&self) -> bool {
        false
    }
    /// One progress line for streamed responses.
    fn progress_body(&self, elapsed: Duration) -> String {
        format!(
            "{{\"progress\":{{\"elapsed_ms\":{}}}}}",
            elapsed.as_millis()
        )
    }
}

/// Core tuning; every field has a production default upstream
/// (`ServeConfig` / `ClusterConfig`).
pub(crate) struct CoreConfig {
    /// Thread name + `core` metric label prefix.
    pub name: &'static str,
    /// Connection cap; accepts beyond it get a canned 503.
    pub max_conns: usize,
    /// Idle / header-drip deadline (not extended by partial bytes).
    pub read_timeout: Duration,
    /// Stalled-writer deadline (extended only by write progress).
    pub write_timeout: Duration,
    /// Socket send-buffer size override (tests/bench force small
    /// buffers to exercise the write deadline deterministically).
    pub sndbuf: Option<usize>,
    /// Blocking-offload pool size; `0` runs offloads inline (only
    /// sane for services that never return `Dispatch::Offload`).
    pub offload_threads: usize,
}

/// Counters the core exports on `/metrics`, labeled per core so
/// multiple cores in one process (tests, soak episodes, router +
/// nodes) stay distinguishable.
pub(crate) struct CoreStats {
    label: String,
    /// Currently open connections (gauge).
    pub open: AtomicI64,
    /// `accept(2)` failures (EMFILE etc.), each followed by backoff.
    pub accept_errors: AtomicU64,
    /// Connections refused with the canned 503 at the cap.
    pub saturation_rejects: AtomicU64,
}

static NEXT_CORE_ID: AtomicU64 = AtomicU64::new(0);

impl CoreStats {
    fn new(name: &str) -> CoreStats {
        CoreStats {
            label: format!("{name}-{}", NEXT_CORE_ID.fetch_add(1, Ordering::Relaxed)),
            open: AtomicI64::new(0),
            accept_errors: AtomicU64::new(0),
            saturation_rejects: AtomicU64::new(0),
        }
    }

    fn samples(&self) -> Vec<obs::Sample> {
        let labeled = |name: &str, help: &str, kind, value| obs::Sample {
            name: name.into(),
            help: help.into(),
            kind,
            labels: vec![("core".into(), self.label.clone())],
            value,
        };
        vec![
            labeled(
                "gem5prof_core_open_connections",
                "connections currently registered with the readiness core",
                obs::MetricKind::Gauge,
                self.open.load(Ordering::Relaxed) as f64,
            ),
            labeled(
                "gem5prof_accept_errors_total",
                "accept(2) failures (each backs the acceptor off exponentially)",
                obs::MetricKind::Counter,
                self.accept_errors.load(Ordering::Relaxed) as f64,
            ),
            labeled(
                "gem5prof_core_saturation_rejects_total",
                "connections refused with a canned 503 at the connection cap",
                obs::MetricKind::Counter,
                self.saturation_rejects.load(Ordering::Relaxed) as f64,
            ),
        ]
    }
}

/// Handle to a running core. The core exits on its own once the
/// service reports draining and every connection has unwound; `join`
/// wakes it (so it notices the flag) and waits for that.
pub(crate) struct CoreHandle {
    waker: Waker,
    thread: Option<JoinHandle<()>>,
    /// Also registered as an obs collector (`/metrics`); held here so
    /// unit tests can assert on counts without a scrape.
    #[allow(dead_code)]
    pub stats: Arc<CoreStats>,
}

impl CoreHandle {
    /// A cloneable waker for completion sources (the engine's worker
    /// pool) to nudge the loop.
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// Wakes the loop (e.g. right after setting the drain flag).
    pub fn wake(&self) {
        self.waker.wake();
    }

    /// Wakes the core and blocks until it has fully unwound.
    pub fn join(&mut self) {
        self.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

type OffloadJob = (u64, Box<dyn FnOnce() -> Reply + Send>);

/// What `check_pending` decided, computed under the connection borrow
/// and acted on after it ends.
enum PendingAction {
    Nothing,
    Resolve(Reply),
    Progress,
}

struct Pending {
    /// `Some` for engine computes; `None` for offloaded closures
    /// (whose replies arrive via the completions list instead).
    rx: Option<Receiver<Result<Arc<String>, String>>>,
    deadline: Instant,
    close: bool,
    stream: bool,
    started: Instant,
    next_tick: Instant,
}

struct Conn {
    stream: TcpStream,
    fd: RawFd,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written.
    woff: usize,
    close_after_flush: bool,
    /// Closing because of an injected torn write (credited as
    /// recovered at close when the service recovers wire chaos).
    torn: bool,
    /// `http.read` visited for the request currently being parsed.
    chaos_read_visited: bool,
    /// `http.short_read` visited for the request currently being parsed.
    chaos_short_visited: bool,
    read_deadline: Option<Instant>,
    write_deadline: Option<Instant>,
    pending: Option<Pending>,
    /// Interest currently registered with the poller.
    reg_read: bool,
    reg_write: bool,
}

struct Core {
    poller: Poller,
    listener: Option<TcpListener>,
    listener_fd: RawFd,
    listener_registered: bool,
    pipe: WakePipe,
    service: Arc<dyn Service>,
    cfg: CoreConfig,
    stats: Arc<CoreStats>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    accept_streak: u32,
    accept_resume: Option<Instant>,
    offload_tx: Option<mpsc::Sender<OffloadJob>>,
    completions: Arc<Mutex<Vec<(u64, Reply)>>>,
    drain_started: Option<Instant>,
    /// Earliest known deadline/tick, recomputed by `run_timers`; a
    /// stale-early value only costs one extra wakeup.
    next_deadline: Option<Instant>,
}

/// Starts a readiness core on `listener`. Returns once the poller
/// thread is running; the core exits when `service.draining()` turns
/// true and the last connection unwinds (see [`CoreHandle::join`]).
pub(crate) fn spawn(
    listener: TcpListener,
    service: Arc<dyn Service>,
    cfg: CoreConfig,
) -> io::Result<CoreHandle> {
    listener.set_nonblocking(true)?;
    let pipe = WakePipe::new()?;
    let waker = pipe.waker();
    let mut poller = Poller::new()?;
    let listener_fd = listener.as_raw_fd();
    poller.add(listener_fd, LISTENER, true, false)?;
    poller.add(pipe.read_fd(), WAKEUP, true, false)?;

    let stats = Arc::new(CoreStats::new(cfg.name));
    // Arc (not Weak), like `ServerStats`: a shut-down core's counters
    // stay visible so summed series remain monotone.
    let stats_m = Arc::clone(&stats);
    obs::global().register_collector(Box::new(move || stats_m.samples()));

    let completions = Arc::new(Mutex::new(Vec::new()));
    let offload_tx = if cfg.offload_threads > 0 {
        let (tx, rx) = mpsc::channel::<OffloadJob>();
        let rx = Arc::new(Mutex::new(rx));
        for i in 0..cfg.offload_threads {
            let rx = Arc::clone(&rx);
            let completions = Arc::clone(&completions);
            let waker = pipe.waker();
            // Detached, like the old per-connection threads: they exit
            // when the core drops the sender; a straggler finishing a
            // forward after the core died pushes into a list nobody
            // reads and wakes a closed pipe, both harmless.
            let _ = std::thread::Builder::new()
                .name(format!("{}-offload-{i}", cfg.name))
                .spawn(move || loop {
                    let job = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                        Ok(job) => job,
                        Err(_) => break,
                    };
                    let (token, f) = job;
                    let reply = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
                        .unwrap_or_else(|_| (500, error_body("forward task panicked"), Vec::new()));
                    completions
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((token, reply));
                    waker.wake();
                });
        }
        Some(tx)
    } else {
        None
    };

    let name = cfg.name;
    let core = Core {
        poller,
        listener: Some(listener),
        listener_fd,
        listener_registered: true,
        pipe,
        service,
        cfg,
        stats: Arc::clone(&stats),
        conns: HashMap::new(),
        next_token: FIRST_CONN,
        accept_streak: 0,
        accept_resume: None,
        offload_tx,
        completions,
        drain_started: None,
        next_deadline: None,
    };
    let thread = std::thread::Builder::new()
        .name(format!("{name}-core"))
        .spawn(move || core.run())?;
    Ok(CoreHandle {
        waker,
        thread: Some(thread),
        stats,
    })
}

impl Core {
    fn run(mut self) {
        let mut events: Vec<poll::Event> = Vec::new();
        loop {
            if self.service.draining() && self.drain_started.is_none() {
                self.begin_drain();
            }
            if let Some(t0) = self.drain_started {
                if self.conns.is_empty() {
                    break;
                }
                if t0.elapsed() >= DRAIN_GRACE {
                    self.force_close_all();
                    break;
                }
            }
            let timeout = self.next_timeout();
            match self.poller.wait(&mut events, Some(timeout)) {
                Ok(()) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    eprintln!("gem5prof [{}-core]: poller failed: {e}", self.cfg.name);
                    break;
                }
            }
            let batch: Vec<poll::Event> = events.drain(..).collect();
            for ev in batch {
                match ev.token {
                    LISTENER => self.accept_ready(),
                    WAKEUP => self.wake_ready(),
                    token => self.conn_ready(token, ev.readable, ev.writable, ev.error),
                }
            }
            self.run_timers();
        }
        self.stats.open.store(0, Ordering::Relaxed);
    }

    fn next_timeout(&self) -> Duration {
        let mut next = self.next_deadline;
        if let Some(t) = self.accept_resume {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        let cap = if self.drain_started.is_some() {
            Duration::from_millis(100)
        } else {
            IDLE_POLL
        };
        match next {
            Some(t) => t.saturating_duration_since(Instant::now()).min(cap),
            None => cap,
        }
    }

    // ---- timers ------------------------------------------------------

    fn run_timers(&mut self) {
        let now = Instant::now();
        if self.accept_resume.is_some_and(|t| now >= t) {
            self.accept_resume = None;
            self.register_listener();
            self.accept_ready();
        }
        let mut next: Option<Instant> = None;
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.tick_conn(token, now, &mut next);
        }
        if let Some(t) = self.accept_resume {
            note(&mut next, t);
        }
        self.next_deadline = next;
    }

    fn tick_conn(&mut self, token: u64, now: Instant, next: &mut Option<Instant>) {
        let (rd, wd, has_pending) = match self.conns.get(&token) {
            Some(c) => (c.read_deadline, c.write_deadline, c.pending.is_some()),
            None => return,
        };
        // A blown read deadline is the slow-loris / idle kill; a blown
        // write deadline is the stalled-reader kill. Either way the
        // connection is gone (any response already queued was counted
        // at queue time; a still-pending compute is counted as `0`).
        if rd.is_some_and(|t| now >= t) || wd.is_some_and(|t| now >= t) {
            self.close_conn(token);
            return;
        }
        if let Some(t) = rd {
            note(next, t);
        }
        if let Some(t) = wd {
            note(next, t);
        }
        if has_pending {
            if self.check_pending(token, now) {
                self.process_rbuf(token);
            }
            if let Some(p) = self.conns.get(&token).and_then(|c| c.pending.as_ref()) {
                note(next, p.deadline);
                if p.stream {
                    note(next, p.next_tick);
                }
            }
        }
    }

    // ---- accept ------------------------------------------------------

    fn accept_ready(&mut self) {
        if self.drain_started.is_some() || self.accept_resume.is_some() {
            return;
        }
        loop {
            let accepted = match &self.listener {
                Some(l) => l.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => {
                    self.accept_streak = 0;
                    if self.conns.len() >= self.cfg.max_conns {
                        self.reject_overload(stream);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    if let Some(b) = self.cfg.sndbuf {
                        poll::set_sndbuf(stream.as_raw_fd(), b);
                    }
                    let fd = stream.as_raw_fd();
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.poller.add(fd, token, true, false).is_err() {
                        continue;
                    }
                    let now = Instant::now();
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            fd,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            woff: 0,
                            close_after_flush: false,
                            torn: false,
                            chaos_read_visited: false,
                            chaos_short_visited: false,
                            read_deadline: Some(now + self.cfg.read_timeout),
                            write_deadline: None,
                            pending: None,
                            reg_read: true,
                            reg_write: false,
                        },
                    );
                    self.stats.open.fetch_add(1, Ordering::Relaxed);
                    note(&mut self.next_deadline, now + self.cfg.read_timeout);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => {
                    // EMFILE and friends: hammering accept() again in
                    // 10ms (the old behavior) just spins. Back off
                    // exponentially and deregister the listener so the
                    // level-triggered poller doesn't spin on it either.
                    self.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                    self.accept_streak += 1;
                    let pause = (1u64 << self.accept_streak.min(10)).min(1000);
                    self.accept_resume = Some(Instant::now() + Duration::from_millis(pause));
                    self.deregister_listener();
                    return;
                }
            }
        }
    }

    /// The connection cap's canned 503: one best-effort write, then
    /// close. Never counted in the request/response balance — no
    /// request was parsed — but visible as its own counter.
    fn reject_overload(&mut self, stream: TcpStream) {
        self.stats
            .saturation_rejects
            .fetch_add(1, Ordering::Relaxed);
        let body = error_body("connection limit reached");
        let head = http::response_head(
            503,
            Some(body.len()),
            &[("retry-after".into(), "1".into())],
            true,
        );
        let mut buf = head.into_bytes();
        buf.extend_from_slice(body.as_bytes());
        let _ = stream.set_nonblocking(true);
        let _ = (&stream).write(&buf);
    }

    fn register_listener(&mut self) {
        if !self.listener_registered && self.listener.is_some() {
            self.listener_registered = self
                .poller
                .add(self.listener_fd, LISTENER, true, false)
                .is_ok();
        }
    }

    fn deregister_listener(&mut self) {
        if self.listener_registered {
            let _ = self.poller.delete(self.listener_fd);
            self.listener_registered = false;
        }
    }

    // ---- wake pipe ---------------------------------------------------

    fn wake_ready(&mut self) {
        self.pipe.drain();
        let done: Vec<(u64, Reply)> = {
            let mut g = self.completions.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *g)
        };
        for (token, reply) in done {
            let offload_pending = self
                .conns
                .get(&token)
                .and_then(|c| c.pending.as_ref())
                .is_some_and(|p| p.rx.is_none());
            if offload_pending {
                self.resolve(token, reply);
                self.process_rbuf(token);
            }
        }
        let now = Instant::now();
        let waiting: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.pending.as_ref().is_some_and(|p| p.rx.is_some()))
            .map(|(t, _)| *t)
            .collect();
        for token in waiting {
            if self.check_pending(token, now) {
                self.process_rbuf(token);
            }
        }
    }

    // ---- connection events -------------------------------------------

    fn conn_ready(&mut self, token: u64, readable: bool, writable: bool, error: bool) {
        if !self.conns.contains_key(&token) {
            return; // closed earlier in this batch
        }
        if writable {
            self.flush_conn(token);
        }
        if readable {
            self.on_readable(token);
        }
        // Pure HUP/ERR (no readable data path to observe EOF through):
        // the peer is gone.
        if error && !readable && self.conns.contains_key(&token) {
            self.close_conn(token);
        }
    }

    fn on_readable(&mut self, token: u64) {
        let mut buf = [0u8; 16384];
        loop {
            // Stop pulling while a compute is pending or output is
            // backed up: the bytes stay in the socket buffer and the
            // kernel applies TCP backpressure for us.
            let pull = match self.conns.get(&token) {
                Some(c) => {
                    c.pending.is_none()
                        && !c.close_after_flush
                        && c.wbuf.len() - c.woff < WBUF_SOFT_CAP
                }
                None => return,
            };
            if !pull {
                break;
            }
            let r = match self.conns.get_mut(&token) {
                Some(c) => c.stream.read(&mut buf),
                None => return,
            };
            match r {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    let c = self.conns.get_mut(&token).expect("conn exists");
                    c.rbuf.extend_from_slice(&buf[..n]);
                    if c.rbuf.len() > MAX_RBUF {
                        self.close_conn(token);
                        return;
                    }
                    self.process_rbuf(token);
                    if !self.conns.contains_key(&token) {
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.sync_interest(token);
    }

    /// Parses and dispatches as many buffered requests as flow control
    /// allows. Runs after reads, after a pending resolution (pipelined
    /// requests behind a compute), and at drain start.
    fn process_rbuf(&mut self, token: u64) {
        loop {
            let now = Instant::now();
            let c = match self.conns.get_mut(&token) {
                Some(c) => c,
                None => return,
            };
            if c.pending.is_some() || c.close_after_flush {
                break;
            }
            if c.wbuf.len() - c.woff >= WBUF_SOFT_CAP {
                break;
            }
            if c.rbuf.is_empty() {
                // Idle between requests: arm (never extend) the
                // keep-alive deadline.
                if c.read_deadline.is_none() {
                    let t = now + self.cfg.read_timeout;
                    c.read_deadline = Some(t);
                    note(&mut self.next_deadline, t);
                }
                break;
            }
            // Wire-read chaos, once per request attempt — the same
            // point the blocking reader injected at entry.
            if !c.chaos_read_visited {
                c.chaos_read_visited = true;
                if chaos::io_error("http.read").is_some() {
                    if self.service.recover_wire_chaos() {
                        chaos::recovered("http.read");
                    }
                    self.close_conn(token);
                    return;
                }
            }
            let parsed = http::try_parse_request(&c.rbuf);
            match parsed {
                Ok(ParseStatus::Partial { body_expected }) => {
                    // A peer dying mid-body is the `http.short_read`
                    // fault; visit it once per request with a body.
                    if body_expected && !c.chaos_short_visited {
                        c.chaos_short_visited = true;
                        if chaos::inject("http.short_read") {
                            if self.service.recover_wire_chaos() {
                                chaos::recovered("http.short_read");
                            }
                            self.close_conn(token);
                            return;
                        }
                    }
                    // Partial bytes do NOT extend the read deadline:
                    // that is the slow-loris kill.
                    if c.read_deadline.is_none() {
                        let t = now + self.cfg.read_timeout;
                        c.read_deadline = Some(t);
                        note(&mut self.next_deadline, t);
                    }
                    break;
                }
                Ok(ParseStatus::Complete { req, consumed }) => {
                    // The body may have arrived whole in one read; the
                    // short-read fault still applies to it.
                    let visit_short = !req.body.is_empty() && !c.chaos_short_visited;
                    c.rbuf.drain(..consumed);
                    c.read_deadline = None;
                    c.chaos_read_visited = false;
                    c.chaos_short_visited = false;
                    if visit_short && chaos::inject("http.short_read") {
                        if self.service.recover_wire_chaos() {
                            chaos::recovered("http.short_read");
                        }
                        self.close_conn(token);
                        return;
                    }
                    self.handle_request(token, req);
                    if !self.conns.contains_key(&token) {
                        return;
                    }
                }
                Err(e) => {
                    self.service.count_parse_error();
                    self.queue_response(token, 400, &error_body(&e.to_string()), &[], true);
                    return;
                }
            }
        }
        self.sync_interest(token);
    }

    fn handle_request(&mut self, token: u64, req: Request) {
        let req_close = req.close;
        self.service.count_request();
        match self.service.dispatch(req) {
            Dispatch::Reply((status, body, extra)) => {
                self.service.count_response(status);
                let close = req_close || self.service.draining();
                self.queue_response(token, status, &body, &extra, close);
            }
            Dispatch::Hangup => {
                self.close_conn(token);
            }
            Dispatch::Pending { rx, stream } => {
                let now = Instant::now();
                let deadline = now + self.service.deadline();
                let c = match self.conns.get_mut(&token) {
                    Some(c) => c,
                    None => return,
                };
                if stream {
                    // The head goes out immediately; progress lines and
                    // the result follow as chunks.
                    let head = http::response_head(
                        200,
                        None,
                        &[("content-type".into(), "application/x-ndjson".into())],
                        req_close,
                    );
                    c.wbuf.extend_from_slice(head.as_bytes());
                    if c.write_deadline.is_none() {
                        c.write_deadline = Some(now + self.cfg.write_timeout);
                    }
                }
                c.pending = Some(Pending {
                    rx: Some(rx),
                    deadline,
                    close: req_close,
                    stream,
                    started: now,
                    next_tick: now + STREAM_TICK,
                });
                note(&mut self.next_deadline, deadline);
                if stream {
                    note(&mut self.next_deadline, now + STREAM_TICK);
                    self.flush_conn(token);
                }
                // The result may already be there (cache re-check,
                // instant compute).
                self.check_pending(token, now);
            }
            Dispatch::Offload(f) => {
                let now = Instant::now();
                let deadline = now + self.service.deadline();
                let c = match self.conns.get_mut(&token) {
                    Some(c) => c,
                    None => return,
                };
                c.pending = Some(Pending {
                    rx: None,
                    deadline,
                    close: req_close,
                    stream: false,
                    started: now,
                    next_tick: now + STREAM_TICK,
                });
                note(&mut self.next_deadline, deadline);
                // Run inline if no pool is configured (or it died):
                // wrong place to block, but never wrong results.
                let inline = match &self.offload_tx {
                    Some(tx) => match tx.send((token, f)) {
                        Ok(()) => None,
                        Err(mpsc::SendError((_, f))) => Some(f),
                    },
                    None => Some(f),
                };
                if let Some(f) = inline {
                    let reply = f();
                    self.resolve(token, reply);
                }
            }
        }
    }

    /// Polls one pending compute: resolution, deadline expiry, or a
    /// due progress tick. Returns whether the pending was resolved.
    fn check_pending(&mut self, token: u64, now: Instant) -> bool {
        let action = {
            let c = match self.conns.get_mut(&token) {
                Some(c) => c,
                None => return false,
            };
            let p = match &mut c.pending {
                Some(p) => p,
                None => return false,
            };
            match &p.rx {
                None => {
                    // Offloaded work: only the deadline applies here;
                    // results arrive via the completions list.
                    if now >= p.deadline {
                        PendingAction::Resolve((504, error_body("deadline exceeded"), Vec::new()))
                    } else {
                        PendingAction::Nothing
                    }
                }
                Some(rx) => match rx.try_recv() {
                    Ok(Ok(body)) => PendingAction::Resolve((200, (*body).clone(), Vec::new())),
                    Ok(Err(msg)) => PendingAction::Resolve((500, error_body(&msg), Vec::new())),
                    // The worker dropped the sender without answering
                    // (it panicked mid-job): report immediately.
                    Err(TryRecvError::Disconnected) => PendingAction::Resolve((
                        500,
                        error_body("worker failed before replying"),
                        Vec::new(),
                    )),
                    Err(TryRecvError::Empty) => {
                        if now >= p.deadline {
                            // Dropping the rx matches `recv_timeout`
                            // expiry: the eventual result still warms
                            // the cache for the next requester.
                            PendingAction::Resolve((
                                504,
                                error_body("deadline exceeded (result will be cached)"),
                                Vec::new(),
                            ))
                        } else if p.stream && now >= p.next_tick {
                            p.next_tick = now + STREAM_TICK;
                            PendingAction::Progress
                        } else {
                            PendingAction::Nothing
                        }
                    }
                },
            }
        };
        match action {
            PendingAction::Nothing => false,
            PendingAction::Resolve(reply) => {
                self.resolve(token, reply);
                true
            }
            PendingAction::Progress => {
                let line = self.service.progress_body(
                    self.conns
                        .get(&token)
                        .and_then(|c| c.pending.as_ref())
                        .map_or(Duration::ZERO, |p| now - p.started),
                );
                let c = match self.conns.get_mut(&token) {
                    Some(c) => c,
                    None => return false,
                };
                let mut line = line;
                line.push('\n');
                c.wbuf.extend_from_slice(&http::chunk(line.as_bytes()));
                if c.write_deadline.is_none() {
                    c.write_deadline = Some(now + self.cfg.write_timeout);
                }
                self.flush_conn(token);
                false
            }
        }
    }

    /// Completes a pending request with its final reply. Exactly one
    /// `count_response` per request happens here or in
    /// `handle_request`/`close_conn` — never two.
    fn resolve(&mut self, token: u64, reply: Reply) {
        let p = match self.conns.get_mut(&token).and_then(|c| c.pending.take()) {
            Some(p) => p,
            None => return,
        };
        let (status, body, extra) = reply;
        self.service.count_response(status);
        let close = p.close || self.service.draining();
        if p.stream {
            // The final chunk carries the full result (or error) body;
            // the logical status was already counted above.
            let now = Instant::now();
            let c = match self.conns.get_mut(&token) {
                Some(c) => c,
                None => return,
            };
            let mut line = body;
            line.push('\n');
            c.wbuf.extend_from_slice(&http::chunk(line.as_bytes()));
            c.wbuf.extend_from_slice(http::FINAL_CHUNK);
            if close {
                c.close_after_flush = true;
            } else if c.read_deadline.is_none() {
                let t = now + self.cfg.read_timeout;
                c.read_deadline = Some(t);
                note(&mut self.next_deadline, t);
            }
            if c.write_deadline.is_none() {
                c.write_deadline = Some(now + self.cfg.write_timeout);
            }
            self.flush_conn(token);
        } else {
            self.queue_response(token, status, &body, &extra, close);
        }
    }

    /// Queues one complete response (head + body) and starts flushing.
    /// The caller has already counted the outcome; a later delivery
    /// failure does not un-count it (same as the blocking core).
    fn queue_response(
        &mut self,
        token: u64,
        status: u16,
        body: &str,
        extra: &[(String, String)],
        close: bool,
    ) {
        // Torn-write chaos: head plus half the body go out, then the
        // connection drops — the wire-level fault the blocking
        // `write_response` injected.
        let torn = chaos::inject("http.torn_write");
        let now = Instant::now();
        let c = match self.conns.get_mut(&token) {
            Some(c) => c,
            None => return,
        };
        let head = http::response_head(status, Some(body.len()), extra, close);
        c.wbuf.extend_from_slice(head.as_bytes());
        if torn {
            c.wbuf.extend_from_slice(&body.as_bytes()[..body.len() / 2]);
            c.close_after_flush = true;
            c.torn = true;
        } else {
            c.wbuf.extend_from_slice(body.as_bytes());
            if close {
                c.close_after_flush = true;
            }
        }
        if c.write_deadline.is_none() {
            let t = now + self.cfg.write_timeout;
            c.write_deadline = Some(t);
            note(&mut self.next_deadline, t);
        }
        if !c.close_after_flush && c.pending.is_none() && c.read_deadline.is_none() {
            let t = now + self.cfg.read_timeout;
            c.read_deadline = Some(t);
            note(&mut self.next_deadline, t);
        }
        self.flush_conn(token);
    }

    fn flush_conn(&mut self, token: u64) {
        loop {
            let c = match self.conns.get_mut(&token) {
                Some(c) => c,
                None => return,
            };
            if c.woff == c.wbuf.len() {
                c.wbuf.clear();
                c.woff = 0;
                c.write_deadline = None;
                if c.close_after_flush {
                    self.close_conn(token);
                    return;
                }
                break;
            }
            match c.stream.write(&c.wbuf[c.woff..]) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    c.woff += n;
                    // Progress (and only progress) extends the write
                    // deadline; a reader draining one byte per second
                    // still can't hold the connection forever past
                    // each stall.
                    c.write_deadline = Some(Instant::now() + self.cfg.write_timeout);
                    if c.woff > WBUF_SOFT_CAP {
                        c.wbuf.drain(..c.woff);
                        c.woff = 0;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.sync_interest(token);
    }

    fn sync_interest(&mut self, token: u64) {
        let c = match self.conns.get_mut(&token) {
            Some(c) => c,
            None => return,
        };
        let want_read = c.pending.is_none()
            && !c.close_after_flush
            && c.rbuf.len() < MAX_RBUF
            && c.wbuf.len() - c.woff < WBUF_SOFT_CAP;
        let want_write = c.woff < c.wbuf.len();
        if (want_read, want_write) != (c.reg_read, c.reg_write) {
            if self
                .poller
                .modify(c.fd, token, want_read, want_write)
                .is_ok()
            {
                c.reg_read = want_read;
                c.reg_write = want_write;
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        let mut c = match self.conns.remove(&token) {
            Some(c) => c,
            None => return,
        };
        if c.pending.take().is_some() {
            // A parsed request whose compute will never reach the
            // wire: count it as "other" so every request still has
            // exactly one outcome (the blocking core's
            // `server.conn_drop` convention).
            self.service.count_response(0);
        }
        if c.torn && self.service.recover_wire_chaos() {
            chaos::recovered("http.torn_write");
        }
        let _ = self.poller.delete(c.fd);
        self.stats.open.fetch_add(-1, Ordering::Relaxed);
    }

    // ---- drain -------------------------------------------------------

    fn begin_drain(&mut self) {
        self.drain_started = Some(Instant::now());
        self.deregister_listener();
        // Dropping the listener closes the port: new connects are
        // refused at the kernel, same as the old acceptor exiting.
        self.listener = None;
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            // Buffered complete requests still get answers (503, or a
            // real reply for `/peek` — the service decides).
            self.process_rbuf(token);
            let idle = self
                .conns
                .get(&token)
                .is_some_and(|c| c.pending.is_none() && c.woff == c.wbuf.len());
            if idle {
                self.close_conn(token);
            }
        }
    }

    fn force_close_all(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
    }
}

fn note(next: &mut Option<Instant>, t: Instant) {
    *next = Some(next.map_or(t, |n| n.min(t)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::ClientConn;
    use std::sync::atomic::AtomicBool;

    struct EchoService {
        draining: Arc<AtomicBool>,
        requests: AtomicU64,
        responses: AtomicU64,
        other: AtomicU64,
    }

    impl EchoService {
        fn new() -> EchoService {
            EchoService {
                draining: Arc::new(AtomicBool::new(false)),
                requests: AtomicU64::new(0),
                responses: AtomicU64::new(0),
                other: AtomicU64::new(0),
            }
        }
    }

    impl Service for EchoService {
        fn dispatch(&self, req: Request) -> Dispatch {
            Dispatch::Reply((200, format!("{{\"path\":\"{}\"}}", req.path), Vec::new()))
        }
        fn count_request(&self) {
            self.requests.fetch_add(1, Ordering::Relaxed);
        }
        fn count_response(&self, status: u16) {
            self.responses.fetch_add(1, Ordering::Relaxed);
            if status == 0 {
                self.other.fetch_add(1, Ordering::Relaxed);
            }
        }
        fn count_parse_error(&self) {
            self.requests.fetch_add(1, Ordering::Relaxed);
            self.responses.fetch_add(1, Ordering::Relaxed);
        }
        fn draining(&self) -> bool {
            self.draining.load(Ordering::Relaxed)
        }
        fn deadline(&self) -> Duration {
            Duration::from_secs(5)
        }
    }

    fn start(max_conns: usize) -> (std::net::SocketAddr, Arc<EchoService>, CoreHandle) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let service = Arc::new(EchoService::new());
        let handle = spawn(
            listener,
            Arc::clone(&service) as Arc<dyn Service>,
            CoreConfig {
                name: "core-test",
                max_conns,
                read_timeout: Duration::from_secs(2),
                write_timeout: Duration::from_secs(2),
                sndbuf: None,
                offload_threads: 0,
            },
        )
        .expect("spawn core");
        (addr, service, handle)
    }

    fn stop(service: &EchoService, handle: &mut CoreHandle) {
        service.draining.store(true, Ordering::Relaxed);
        handle.join();
    }

    #[test]
    fn serves_keepalive_requests_and_counts_them() {
        let (addr, service, mut handle) = start(8);
        let mut conn = ClientConn::connect(addr, Duration::from_secs(5)).expect("connect");
        for path in ["/alpha", "/beta"] {
            let (status, body) = conn.request("GET", path, None).expect("request");
            assert_eq!(status, 200);
            assert!(body.contains(path), "echo body: {body}");
        }
        stop(&service, &mut handle);
        assert_eq!(service.requests.load(Ordering::Relaxed), 2);
        assert_eq!(service.responses.load(Ordering::Relaxed), 2);
        assert_eq!(service.other.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn rejects_connections_beyond_the_cap_with_a_canned_503() {
        let (addr, service, mut handle) = start(1);
        // First connection does a request, guaranteeing it is
        // registered before the second arrives.
        let mut keeper = ClientConn::connect(addr, Duration::from_secs(5)).expect("connect");
        let (status, _) = keeper.request("GET", "/hold", None).expect("request");
        assert_eq!(status, 200);
        // Second connection gets the canned 503 without sending a byte.
        let mut extra = std::net::TcpStream::connect(addr).expect("connect 2");
        extra
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut raw = String::new();
        extra.read_to_string(&mut raw).expect("read 503");
        assert!(
            raw.starts_with("HTTP/1.1 503"),
            "expected canned 503, got: {raw:?}"
        );
        assert!(raw.contains("connection limit reached"), "{raw:?}");
        assert_eq!(handle.stats.saturation_rejects.load(Ordering::Relaxed), 1);
        // The canned 503 is out-of-band: no request was parsed, so the
        // request/response balance is untouched.
        stop(&service, &mut handle);
        assert_eq!(service.requests.load(Ordering::Relaxed), 1);
        assert_eq!(service.responses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn malformed_request_gets_a_400_and_closes() {
        let (addr, service, mut handle) = start(8);
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        s.write_all(b"BOGUS\r\n\r\n").expect("write");
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.1 400"), "got: {raw:?}");
        stop(&service, &mut handle);
        assert_eq!(service.requests.load(Ordering::Relaxed), 1);
        assert_eq!(service.responses.load(Ordering::Relaxed), 1);
    }
}
