//! A deliberately small HTTP/1.1 implementation over std TCP.
//!
//! Server side: [`read_request`] parses one request from a buffered
//! stream (with hard limits on line length, header count and body size)
//! and [`write_response`] emits a `Content-Length`-framed response.
//! Client side: [`ClientConn`] is a keep-alive connection used by
//! `servectl`, `loadgen` and the integration tests.
//!
//! Only what the serving layer needs is implemented: no multipart, no
//! TLS. Responses carry an explicit `Content-Length`, except streamed
//! progress responses which use `Transfer-Encoding: chunked` (the one
//! place the readiness core emits a body of unknown length).
//!
//! The readiness-loop core parses requests incrementally from its
//! per-connection buffers via [`try_parse_request`]; the blocking
//! [`read_request`] form remains for the thread-per-connection
//! baseline (`--thread-per-conn`) and tests. Both share the same
//! validation rules and limits.

use gem5prof_chaos as chaos;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Longest accepted request/header line.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per message.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body.
const MAX_BODY: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string (e.g. `/figures/fig01`).
    pub path: String,
    /// Raw query string, if any (without the `?`).
    pub query: Option<String>,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection.
    pub close: bool,
}

impl Request {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of a `k=v` query parameter. A bare key without `=`
    /// (`?quick`) is a flag-style parameter and yields `Some("")`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .as_deref()?
            .split('&')
            .find_map(|pair| match pair.split_once('=') {
                Some((k, v)) => (k == key).then_some(v),
                None => (pair == key).then_some(""),
            })
    }
}

/// Reads one line terminated by `\r\n` (tolerating bare `\n`), bounded
/// by [`MAX_LINE`].
fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(None) // clean EOF between requests
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "truncated line",
                    ))
                };
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let s = String::from_utf8(buf).map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 header line")
                    })?;
                    return Ok(Some(s));
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Parses one request. `Ok(None)` means the peer closed the connection
/// cleanly before sending another request; `Err(InvalidData)` means the
/// bytes were not a well-formed request (the caller should answer 400
/// and close).
pub fn read_request(r: &mut impl BufRead) -> io::Result<Option<Request>> {
    if let Some(e) = chaos::io_error("http.read") {
        return Err(e);
    }
    let line = match read_line(r)? {
        None => return Ok(None),
        Some(l) => l,
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed request line `{line}`"),
            ))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unsupported HTTP version",
        ));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF inside headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many headers",
            ));
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed header line"))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }

    // Duplicate `Content-Length` headers are a request-smuggling vector:
    // reject outright instead of silently trusting the first one.
    if headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .count()
        > 1
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "duplicate Content-Length headers",
        ));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    if content_length > 0 && chaos::inject("http.short_read") {
        // A peer that dies mid-body: consume part of it, then fail the
        // read the way a closed socket would.
        let mut partial = vec![0u8; content_length / 2];
        r.read_exact(&mut partial)?;
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "chaos: short body read",
        ));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;

    let close = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.eq_ignore_ascii_case("close"))
        .unwrap_or(version == "HTTP/1.0");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body,
        close,
    }))
}

/// Progress of [`try_parse_request`] over a byte buffer.
#[derive(Debug)]
pub(crate) enum ParseStatus {
    /// More bytes needed. `body_expected` is true once the header
    /// block is complete and a nonzero body is still outstanding —
    /// the readiness core uses this for the `http.short_read` chaos
    /// point (a peer dying mid-body).
    Partial { body_expected: bool },
    /// One complete request, with how many buffer bytes it consumed.
    Complete { req: Request, consumed: usize },
}

/// Takes one `\r\n`-terminated line (tolerating bare `\n`) from
/// `buf[*pos..]`, advancing `pos` past it. `Ok(None)` means the line
/// is still incomplete; an over-long partial line fails immediately
/// so a drip-fed attacker cannot buffer without bound.
fn take_line(buf: &[u8], pos: &mut usize) -> io::Result<Option<String>> {
    let rest = &buf[*pos..];
    match rest.iter().position(|&b| b == b'\n') {
        None => {
            // +1: a complete line of exactly MAX_LINE bytes may still
            // have its `\r` buffered while the `\n` is in flight.
            if rest.len() > MAX_LINE + 1 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
            }
            Ok(None)
        }
        Some(nl) => {
            let mut line = &rest[..nl];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            if line.len() > MAX_LINE {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
            }
            let s = std::str::from_utf8(line)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 header line"))?
                .to_string();
            *pos += nl + 1;
            Ok(Some(s))
        }
    }
}

/// Incremental form of [`read_request`]: parses one request from the
/// front of `buf` without consuming it (the caller drains `consumed`
/// bytes on `Complete`). Validation — limits, malformed lines,
/// duplicate `Content-Length` — matches `read_request` exactly;
/// errors are detected as early as the bytes allow.
pub(crate) fn try_parse_request(buf: &[u8]) -> io::Result<ParseStatus> {
    let mut pos = 0usize;
    let line = match take_line(buf, &mut pos)? {
        None => {
            return Ok(ParseStatus::Partial {
                body_expected: false,
            })
        }
        Some(l) => l,
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed request line `{line}`"),
            ))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unsupported HTTP version",
        ));
    }

    let mut headers = Vec::new();
    loop {
        let line = match take_line(buf, &mut pos)? {
            None => {
                return Ok(ParseStatus::Partial {
                    body_expected: false,
                })
            }
            Some(l) => l,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many headers",
            ));
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed header line"))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }

    if headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .count()
        > 1
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "duplicate Content-Length headers",
        ));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    if buf.len() - pos < content_length {
        return Ok(ParseStatus::Partial {
            body_expected: true,
        });
    }
    let body = buf[pos..pos + content_length].to_vec();

    let close = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.eq_ignore_ascii_case("close"))
        .unwrap_or(version == "HTTP/1.0");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    Ok(ParseStatus::Complete {
        consumed: pos + content_length,
        req: Request {
            method: method.to_ascii_uppercase(),
            path,
            query,
            headers,
            body,
            close,
        },
    })
}

/// Reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete `Content-Length`-framed response.
///
/// The content type defaults to `application/json`; an extra header
/// named `content-type` overrides it (used by the Prometheus `/metrics`
/// exposition, which is plain text).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    body: &[u8],
    extra_headers: &[(String, String)],
    close: bool,
) -> io::Result<()> {
    let head = response_head(status, Some(body.len()), extra_headers, close);
    if chaos::inject("http.torn_write") {
        // A torn response: full header (advertising the real length) but
        // only half the body, then the connection errors out. The client
        // must detect the truncation, not hang on it.
        w.write_all(head.as_bytes())?;
        w.write_all(&body[..body.len() / 2])?;
        let _ = w.flush();
        return Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            "chaos: torn response write",
        ));
    }
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Renders a response head. `body_len: Some(n)` frames with
/// `Content-Length`; `None` frames with `Transfer-Encoding: chunked`
/// (streamed progress responses). Header order matches what
/// [`write_response`] has always emitted.
pub(crate) fn response_head(
    status: u16,
    body_len: Option<usize>,
    extra_headers: &[(String, String)],
    close: bool,
) -> String {
    let has_content_type = extra_headers
        .iter()
        .any(|(k, _)| k.eq_ignore_ascii_case("content-type"));
    let mut head = format!("HTTP/1.1 {status} {}\r\n", reason(status));
    if !has_content_type {
        head.push_str("content-type: application/json\r\n");
    }
    match body_len {
        Some(n) => head.push_str(&format!("content-length: {n}\r\n")),
        None => head.push_str("transfer-encoding: chunked\r\n"),
    }
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(if close {
        "connection: close\r\n\r\n"
    } else {
        "connection: keep-alive\r\n\r\n"
    });
    head
}

/// Frames one chunk of a `Transfer-Encoding: chunked` body.
pub(crate) fn chunk(data: &[u8]) -> Vec<u8> {
    let mut out = format!("{:x}\r\n", data.len()).into_bytes();
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
    out
}

/// The terminal zero-length chunk.
pub(crate) const FINAL_CHUNK: &[u8] = b"0\r\n\r\n";

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A keep-alive HTTP/1.1 client connection.
#[derive(Debug)]
pub struct ClientConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ClientConn {
    /// Connects with the given connect/read/write timeout.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let sockaddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(ClientConn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Adjusts the read/write timeout after connect. A forwarding
    /// router connects with a short timeout (dead-node failover must
    /// be fast) but then reads with a long one (a cold compute can
    /// legitimately take the server's whole deadline). The cloned
    /// reader shares the socket, so one call covers both directions.
    pub fn set_io_timeout(&self, timeout: Duration) -> io::Result<()> {
        self.writer.set_read_timeout(Some(timeout))?;
        self.writer.set_write_timeout(Some(timeout))
    }

    /// Sends one request and reads the response: `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        self.request_with_headers(method, path, body)
            .map(|(status, _headers, body)| (status, body))
    }

    /// Like [`request`](Self::request) but also returns the response
    /// headers (lower-cased names), which retrying clients need for
    /// `Retry-After`.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, Vec<(String, String)>, String)> {
        let body = body.unwrap_or("");
        let msg = format!(
            "{method} {path} HTTP/1.1\r\nhost: gem5prof\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(msg.as_bytes())?;
        self.writer.flush()?;

        let status_line = read_line(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line `{status_line}`"),
                )
            })?;
        let mut content_length = 0usize;
        let mut chunked = false;
        let mut headers = Vec::new();
        loop {
            let line = read_line(&mut self.reader)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "EOF in response headers")
            })?;
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                let (k, v) = (k.trim().to_ascii_lowercase(), v.trim().to_string());
                if k == "content-length" {
                    content_length = v.parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
                }
                if k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked") {
                    chunked = true;
                }
                headers.push((k, v));
            }
        }
        let body = if chunked {
            self.read_chunked_body()?
        } else {
            let mut body = vec![0u8; content_length];
            self.reader.read_exact(&mut body)?;
            body
        };
        let body = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        Ok((status, headers, body))
    }

    /// Decodes a `Transfer-Encoding: chunked` body (streamed progress
    /// responses), concatenating the chunks. Bounded so a runaway
    /// stream cannot buffer without limit.
    fn read_chunked_body(&mut self) -> io::Result<Vec<u8>> {
        const MAX_STREAM_BODY: usize = 16 * 1024 * 1024;
        let mut body = Vec::new();
        loop {
            let line = read_line(&mut self.reader)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF in chunk size"))?;
            let size_str = line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_str, 16).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad chunk size `{line}`"),
                )
            })?;
            if size == 0 {
                // Trailer section: read lines until the blank terminator.
                loop {
                    match read_line(&mut self.reader)? {
                        Some(l) if l.is_empty() => return Ok(body),
                        Some(_) => continue,
                        None => {
                            return Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "EOF in chunk trailer",
                            ))
                        }
                    }
                }
            }
            if body.len() + size > MAX_STREAM_BODY {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "chunked body too large",
                ));
            }
            let start = body.len();
            body.resize(start + size, 0);
            self.reader.read_exact(&mut body[start..])?;
            // The CRLF after the chunk payload.
            let sep = read_line(&mut self.reader)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF after chunk"))?;
            if !sep.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "missing chunk terminator",
                ));
            }
        }
    }
}

/// One-shot convenience: connect, request, return `(status, body)`.
pub fn one_shot(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<(u16, String)> {
    ClientConn::connect(addr, timeout)?.request(method, path, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_request_with_body_and_query() {
        let raw = b"POST /experiments?x=1&y=2 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/experiments");
        assert_eq!(req.query_param("y"), Some("2"));
        assert_eq!(req.body, b"abcd");
        assert!(!req.close);
        assert_eq!(req.header("host"), Some("h"));
    }

    #[test]
    fn bare_query_keys_are_flag_parameters() {
        let raw = b"GET /x?quick&depth=3 HTTP/1.1\r\n\r\n";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap().unwrap();
        assert_eq!(req.query_param("quick"), Some(""));
        assert_eq!(req.query_param("depth"), Some("3"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd";
        let err = read_request(&mut Cursor::new(&raw[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("duplicate Content-Length"));
    }

    #[test]
    fn eof_between_requests_is_clean() {
        assert!(read_request(&mut Cursor::new(&b""[..])).unwrap().is_none());
    }

    #[test]
    fn malformed_requests_are_invalid_data() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            &b"GET /x HTTP/2.0\r\n\r\n"[..],
            &b"GET noslash HTTP/1.1\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
        ] {
            let err = read_request(&mut Cursor::new(raw)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{raw:?}");
        }
    }

    #[test]
    fn connection_close_and_http10_are_detected() {
        let raw = b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(
            read_request(&mut Cursor::new(&raw[..]))
                .unwrap()
                .unwrap()
                .close
        );
        let raw = b"GET /x HTTP/1.0\r\n\r\n";
        assert!(
            read_request(&mut Cursor::new(&raw[..]))
                .unwrap()
                .unwrap()
                .close
        );
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            b"{}",
            &[("retry-after".into(), "1".into())],
            false,
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(s.contains("content-type: application/json\r\n"));
        assert!(s.contains("content-length: 2\r\n"));
        assert!(s.contains("retry-after: 1\r\n"));
        assert!(s.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn incremental_parser_agrees_with_blocking_parser() {
        let corpus: &[&[u8]] = &[
            b"POST /experiments?x=1&y=2 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd",
            b"GET /x?quick&depth=3 HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n",
            b"GET /x HTTP/1.0\r\n\r\n",
            b"GARBAGE\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd",
        ];
        for raw in corpus {
            let blocking = read_request(&mut Cursor::new(*raw));
            let incremental = try_parse_request(raw);
            match (blocking, incremental) {
                (Ok(Some(a)), Ok(ParseStatus::Complete { req: b, consumed })) => {
                    assert_eq!(a.method, b.method, "{raw:?}");
                    assert_eq!(a.path, b.path);
                    assert_eq!(a.query, b.query);
                    assert_eq!(a.headers, b.headers);
                    assert_eq!(a.body, b.body);
                    assert_eq!(a.close, b.close);
                    assert_eq!(consumed, raw.len(), "{raw:?}");
                }
                (Err(a), Err(b)) => assert_eq!(a.kind(), b.kind(), "{raw:?}"),
                (a, b) => panic!("parsers disagree on {raw:?}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn incremental_parser_reports_partials_byte_by_byte() {
        let raw = b"POST /experiments HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        for cut in 0..raw.len() {
            match try_parse_request(&raw[..cut]).unwrap() {
                ParseStatus::Partial { body_expected } => {
                    // The body is only "expected" once the blank line landed.
                    let headers_done = cut >= raw.len() - 4;
                    assert_eq!(body_expected, headers_done, "cut={cut}");
                }
                ParseStatus::Complete { .. } => panic!("complete at cut {cut}"),
            }
        }
        assert!(matches!(
            try_parse_request(raw).unwrap(),
            ParseStatus::Complete { consumed, .. } if consumed == raw.len()
        ));
    }

    #[test]
    fn incremental_parser_consumes_one_pipelined_request_at_a_time() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let ParseStatus::Complete { req, consumed } = try_parse_request(raw).unwrap() else {
            panic!("first request incomplete");
        };
        assert_eq!(req.path, "/a");
        let ParseStatus::Complete { req, consumed: c2 } =
            try_parse_request(&raw[consumed..]).unwrap()
        else {
            panic!("second request incomplete");
        };
        assert_eq!(req.path, "/b");
        assert_eq!(consumed + c2, raw.len());
    }

    #[test]
    fn incremental_parser_rejects_overlong_partial_lines() {
        let raw = vec![b'A'; MAX_LINE + 16];
        let err = try_parse_request(&raw).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn chunk_framing_round_trips() {
        let framed = [chunk(b"hello"), chunk(b", world"), FINAL_CHUNK.to_vec()].concat();
        assert!(framed.starts_with(b"5\r\nhello\r\n"));
        assert!(framed.ends_with(b"0\r\n\r\n"));
        let head = response_head(200, None, &[], true);
        assert!(head.contains("transfer-encoding: chunked\r\n"));
        assert!(!head.contains("content-length"));
    }

    #[test]
    fn content_type_header_overrides_default() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            200,
            b"x 1\n",
            &[("content-type".into(), "text/plain; version=0.0.4".into())],
            false,
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("content-type: text/plain; version=0.0.4\r\n"));
        assert!(
            !s.contains("application/json"),
            "default content type must be suppressed: {s}"
        );
    }
}
