//! Route dispatch and JSON rendering.
//!
//! Cheap endpoints (`/healthz`, `/stats`, `/metrics`, `/profile`) are
//! answered inline on the connection thread; compute endpoints
//! (`/figures/*`, `/tables/*`, `POST /experiments`) go through the
//! engine's cache + admission queue.

use crate::engine::{Engine, ServerStats, Submission, Work};
use crate::http::Request;
use crate::minjson::{self, Json};
use gem5prof::figures::{self, Fidelity};
use gem5prof::report::Table;
use gem5prof::spec::{self, ExperimentSpec};
use gem5prof::ProfileRun;
use gem5prof_profstore::{self as profstore, ProfStore};
use platforms::{PlatformId, SystemKnobs};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A finished response: status, JSON body, extra headers.
pub(crate) type Reply = (u16, String, Vec<(String, String)>);

/// Shared server state every connection thread sees.
pub(crate) struct Shared {
    pub engine: std::sync::Arc<Engine>,
    pub stats: std::sync::Arc<ServerStats>,
    pub draining: std::sync::Arc<std::sync::atomic::AtomicBool>,
    pub deadline: Duration,
    pub started: Instant,
    /// Stable identity this node reports in `/healthz` (the cluster
    /// router's membership probe records it).
    pub node_id: String,
    /// Continuous profiling store (`--profile-dir`); `None` turns the
    /// `/profile/history|diff|snapshot|bless` routes into 503s.
    pub profstore: Option<Arc<ProfStore>>,
}

pub(crate) fn error_body(msg: &str) -> String {
    Json::obj(vec![("error", Json::str(msg))]).to_string_compact()
}

fn plain(status: u16, msg: &str) -> Reply {
    (status, error_body(msg), Vec::new())
}

/// The drain rejection: `Retry-After` marks it as transient so
/// retrying clients (see `retry`) treat it like backpressure instead
/// of a hard failure.
pub(crate) fn draining_reply() -> Reply {
    (
        503,
        error_body("draining"),
        vec![("retry-after".into(), "1".into())],
    )
}

/// Maps a request onto the canonical result-cache key it would
/// compute, if the route is one the cluster router shards by key.
///
/// Uses the same parsers as local dispatch, so router-side ownership
/// and node-side caching agree byte-for-byte on the key. Unparseable
/// requests return `None`: the router forwards them anyway and lets
/// the owner node render the 4xx, keeping error bodies identical
/// between 1-node and N-node deployments.
pub(crate) fn route_key(req: &Request) -> Option<String> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", path) if path.starts_with("/figures/") => {
            parse_figure_path(&path["/figures/".len()..], req)
                .ok()
                .map(|w| w.key())
        }
        ("GET", "/tables/table1") => Some(Work::Table(1).key()),
        ("GET", "/tables/table2") => Some(Work::Table(2).key()),
        ("POST", "/experiments") => parse_experiment(&req.body)
            .ok()
            .map(|spec| Work::Experiment(spec).key()),
        _ => None,
    }
}

/// A routed request: either already answered, or waiting on a compute
/// whose result arrives on `rx`.
pub(crate) enum Routed {
    Done(Reply),
    /// `stream` asks for a chunked response with progress lines while
    /// the compute runs (`POST /experiments?stream=progress`).
    Pending {
        rx: mpsc::Receiver<Result<Arc<String>, String>>,
        stream: bool,
    },
}

/// Dispatches one parsed request to its route without blocking on
/// computes: the readiness core polls `Routed::Pending` receivers.
pub(crate) fn dispatch(req: &Request, shared: &Shared) -> Routed {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", path) if path.starts_with("/figures/") => {
            match parse_figure_path(&path["/figures/".len()..], req) {
                Ok(work) => start_work(work, shared, false),
                Err((status, msg)) => Routed::Done(plain(status, &msg)),
            }
        }
        ("GET", "/tables/table1") => start_work(Work::Table(1), shared, false),
        ("GET", "/tables/table2") => start_work(Work::Table(2), shared, false),
        ("POST", "/experiments") => {
            // Streaming is opt-in per request; any other value fails
            // loudly instead of silently running unstreamed.
            let stream = match req.query_param("stream") {
                None => false,
                Some("progress") => true,
                Some(other) => {
                    return Routed::Done(plain(
                        400,
                        &format!("unknown stream mode `{other}` (want `progress`)"),
                    ))
                }
            };
            match parse_experiment(&req.body) {
                Ok(spec) => start_work(Work::Experiment(spec), shared, stream),
                Err(msg) => Routed::Done(plain(400, &msg)),
            }
        }
        _ => Routed::Done(inline_routes(req, shared)),
    }
}

/// Blocking dispatch: routes, then waits out any compute under the
/// per-request deadline. The legacy thread-per-connection path (and
/// tests) use this; the readiness core uses [`dispatch`] directly.
pub(crate) fn handle(req: &Request, shared: &Shared) -> Reply {
    match dispatch(req, shared) {
        Routed::Done(reply) => reply,
        Routed::Pending { rx, .. } => await_pending(&rx, shared.deadline),
    }
}

/// Waits for a compute result the way `recv_timeout` always has:
/// 200/500 on an answer, 504 on deadline (the eventual result still
/// warms the cache), 500 if the worker died without answering.
pub(crate) fn await_pending(
    rx: &mpsc::Receiver<Result<Arc<String>, String>>,
    deadline: Duration,
) -> Reply {
    match rx.recv_timeout(deadline) {
        Ok(Ok(body)) => (200, (*body).clone(), Vec::new()),
        Ok(Err(msg)) => plain(500, &msg),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            plain(504, "deadline exceeded (result will be cached)")
        }
        // The worker dropped the reply sender without answering (it
        // panicked mid-job): a server fault, reported immediately —
        // not a deadline expiry after a pointless full wait.
        Err(mpsc::RecvTimeoutError::Disconnected) => plain(500, "worker failed before replying"),
    }
}

/// Routes answered inline (no compute): status, caches, profiles,
/// peers, and the 4xx fall-throughs.
fn inline_routes(req: &Request, shared: &Shared) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, healthz_json(shared), Vec::new()),
        ("GET", "/stats") => (200, stats_json(shared), Vec::new()),
        ("GET", "/metrics") => (
            200,
            gem5prof_obs::global().render_prometheus(),
            vec![(
                "content-type".into(),
                "text/plain; version=0.0.4; charset=utf-8".into(),
            )],
        ),
        ("GET", "/profile") => (200, profile_json(), Vec::new()),
        ("GET", "/profile/history") => profile_history(req, shared),
        ("GET", "/profile/diff") => profile_diff(req, shared),
        ("POST", "/profile/snapshot") => profile_snapshot(req, shared),
        ("POST", "/profile/bless") => profile_bless(req, shared),
        // Compute routes (`/figures/*`, `/tables/table1|2`,
        // `POST /experiments`) are intercepted by `dispatch` and never
        // reach here; only their method/path near-misses fall through.
        // `/tables/<anything else>` is a missing resource, not a bad request.
        ("GET", path) if path.starts_with("/tables/") => plain(404, "not found"),
        // Peer warm-tier probe: the body is a canonical result-cache
        // key; answer from the local tiers or 404 — never compute. Kept
        // answerable during drain (see `serve_connection`) so a
        // draining node's warm entries remain fetchable.
        ("POST", "/peek") => match std::str::from_utf8(&req.body) {
            Ok(key) if !key.is_empty() => match shared.engine.peek(key) {
                Some(body) => (200, (*body).clone(), Vec::new()),
                None => plain(404, "not cached"),
            },
            _ => plain(400, "peek body must be a non-empty UTF-8 cache key"),
        },
        // Cluster router pushes the node's peer list once every member's
        // ephemeral address is known: a comma-separated `host:port` list.
        ("POST", "/peers") => match std::str::from_utf8(&req.body) {
            Ok(list) => {
                let peers: Vec<String> = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
                let n = peers.len();
                shared.engine.set_peers(peers);
                (
                    200,
                    Json::obj(vec![("peers", Json::Num(n as f64))]).to_string_compact(),
                    Vec::new(),
                )
            }
            Err(_) => plain(400, "peer list must be UTF-8"),
        },
        // Known paths with the wrong method get a 405, not a 404.
        (
            _,
            "/healthz" | "/stats" | "/metrics" | "/profile" | "/profile/history" | "/profile/diff"
            | "/profile/snapshot" | "/profile/bless" | "/experiments" | "/peek" | "/peers",
        ) => plain(405, "method not allowed"),
        (_, path) if path.starts_with("/figures/") || path.starts_with("/tables/") => {
            plain(405, "method not allowed")
        }
        _ => plain(404, "not found"),
    }
}

/// Submits compute work through the cache + admission queue; a miss
/// comes back as `Routed::Pending` for the caller to await.
fn start_work(work: Work, shared: &Shared, stream: bool) -> Routed {
    if shared.draining.load(Ordering::Relaxed) {
        return Routed::Done(draining_reply());
    }
    Routed::Done(match shared.engine.submit(work) {
        Submission::Hit(body) => (200, (*body).clone(), Vec::new()),
        Submission::Busy => (
            429,
            error_body("admission queue full"),
            vec![("retry-after".into(), "1".into())],
        ),
        Submission::Draining => draining_reply(),
        Submission::Pending(rx) => return Routed::Pending { rx, stream },
    })
}

/// Parses `figNN` (accepting `fig1` and `fig01`) plus an optional
/// `?fidelity=quick|paper` query parameter. An unknown figure is a
/// missing resource (404); a bad query on a real figure is a bad
/// request (400) — including any query key other than `fidelity`, so
/// typos (`?fidelty=paper`) fail loudly instead of silently running at
/// the default fidelity.
fn parse_figure_path(name: &str, req: &Request) -> Result<Work, (u16, String)> {
    let n: usize = name
        .strip_prefix("fig")
        .and_then(|d| d.parse().ok())
        .filter(|&n| (1..=17).contains(&n))
        .ok_or_else(|| (404, format!("unknown figure `{name}` (want fig01..fig17)")))?;
    if let Some(q) = req.query.as_deref() {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let key = pair.split_once('=').map_or(pair, |(k, _)| k);
            if key != "fidelity" {
                return Err((
                    400,
                    format!("unknown query parameter `{key}` (only `fidelity` is accepted)"),
                ));
            }
        }
    }
    let fidelity = match req.query_param("fidelity") {
        None => Fidelity::Quick,
        Some(f) => spec::parse_fidelity(f)
            .ok_or_else(|| (400, format!("bad fidelity `{f}` (quick|paper)")))?,
    };
    Ok(Work::Figure(n, fidelity))
}

/// Parses a `POST /experiments` body into a canonical spec.
///
/// ```json
/// {"platform": "intel_xeon", "workload": "dedup", "scale": "test",
///  "cpu": "o3", "mode": "se", "knobs": "thp,freq=2.4"}
/// ```
///
/// `scale`, `mode`, `knobs`, `harts`, `corun` and `corun_div` are
/// optional (`test`, `se`, default, 1, none, 1). Any other field is a
/// 400 naming the offending key — matching `/figures/*` query handling,
/// so typos fail loudly instead of silently running the default.
fn parse_experiment(body: &[u8]) -> Result<ExperimentSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = minjson::parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
    let Json::Obj(pairs) = &doc else {
        return Err("experiment spec must be a JSON object".into());
    };
    const KNOWN: [&str; 9] = [
        "platform",
        "workload",
        "scale",
        "cpu",
        "mode",
        "knobs",
        "harts",
        "corun",
        "corun_div",
    ];
    for (k, _) in pairs {
        if !KNOWN.contains(&k.as_str()) {
            return Err(format!(
                "unknown field `{k}` (accepted: {})",
                KNOWN.join(", ")
            ));
        }
    }
    let field = |name: &str| -> Result<&str, String> {
        doc.get(name)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing or non-string field `{name}`"))
    };
    let platform = PlatformId::from_name(field("platform")?)
        .ok_or_else(|| "unknown platform (intel_xeon|m1_pro|m1_ultra)".to_string())?;
    let workload =
        spec::parse_workload(field("workload")?).ok_or_else(|| "unknown workload".to_string())?;
    let scale = match doc.get("scale") {
        None => gem5sim_workloads::Scale::Test,
        Some(v) => v
            .as_str()
            .and_then(spec::parse_scale)
            .ok_or_else(|| "bad scale (test|simsmall|simmedium)".to_string())?,
    };
    let cpu = spec::parse_cpu(field("cpu")?)
        .ok_or_else(|| "unknown cpu (atomic|timing|minor|o3)".to_string())?;
    let mode = match doc.get("mode") {
        None => gem5sim::config::SimMode::Se,
        Some(v) => v
            .as_str()
            .and_then(spec::parse_mode)
            .ok_or_else(|| "bad mode (se|fs)".to_string())?,
    };
    let knobs = match doc.get("knobs") {
        None => SystemKnobs::new(),
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| "field `knobs` must be a string".to_string())?;
            SystemKnobs::parse(s)?
        }
    };
    let small_int = |name: &str, max: u64| -> Result<u64, String> {
        match doc.get(name) {
            None => Ok(1),
            Some(v) => v
                .as_u64()
                .filter(|&n| (1..=max).contains(&n))
                .ok_or_else(|| format!("field `{name}` must be an integer in 1..={max}")),
        }
    };
    let harts = small_int("harts", 8)? as usize;
    let corun_div = small_int("corun_div", 8)?;
    let corun = match doc.get("corun") {
        None => None,
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| "field `corun` must be a microbenchmark name".to_string())?;
            let m = spec::parse_microbench(s)
                .ok_or_else(|| format!("unknown corun microbenchmark `{s}`"))?;
            if !matches!(workload, gem5sim_workloads::Workload::Micro(_)) {
                return Err(format!(
                    "field `corun` requires a microbenchmark workload, got `{workload}`"
                ));
            }
            Some(m)
        }
    };
    Ok(ExperimentSpec {
        platform,
        workload,
        scale,
        cpu,
        mode,
        knobs,
        harts,
        corun,
        corun_div,
    })
}

// ---------------------------------------------------------------------
// JSON rendering (called from engine workers)
// ---------------------------------------------------------------------

/// Renders a [`Table`] as JSON.
fn table_to_json(t: &Table) -> Json {
    Json::obj(vec![
        ("title", Json::str(&t.title)),
        (
            "columns",
            Json::Arr(t.columns.iter().map(Json::str).collect()),
        ),
        (
            "rows",
            Json::Arr(
                t.rows
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("label", Json::str(&r.label)),
                            (
                                "values",
                                Json::Arr(r.values.iter().map(|&v| Json::Num(v)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("notes", Json::Arr(t.notes.iter().map(Json::str).collect())),
    ])
}

/// Computes figure `n` and renders it.
pub(crate) fn figure_json(n: usize, f: Fidelity) -> String {
    let table = match n {
        1 => figures::fig01(f),
        2 => figures::fig02(f),
        3 => figures::fig03(f),
        4 => figures::fig04(f),
        5 => figures::fig05(f),
        6 => figures::fig06(f),
        7 => figures::fig07(f),
        8 => figures::fig08(f),
        9 => figures::fig09(f),
        10 => figures::fig10(f),
        11 => figures::fig11(f),
        12 => figures::fig12(f),
        13 => figures::fig13(f),
        14 => figures::fig14(f),
        15 => figures::fig15(f),
        16 => figures::fig16(f),
        17 => figures::fig17(f),
        _ => unreachable!("figure index validated at parse time"),
    };
    table_to_json(&table).to_string_compact()
}

/// Computes table `n` (1 or 2) and renders it.
pub(crate) fn table_json_by_index(n: usize) -> String {
    let table = match n {
        1 => figures::table1(),
        2 => figures::table2(),
        _ => unreachable!("table index validated at parse time"),
    };
    table_to_json(&table).to_string_compact()
}

/// Runs an experiment spec and renders the profile.
pub(crate) fn experiment_json(spec: &ExperimentSpec) -> String {
    let run: ProfileRun = spec.run();
    let host = &run.hosts[0];
    let (retiring, frontend, bad_spec, backend) = host.topdown.level1_pct();
    Json::obj(vec![
        ("key", Json::str(spec.canonical_key())),
        (
            "spec",
            Json::obj(vec![
                ("platform", Json::str(spec.platform.name())),
                ("workload", Json::str(spec.workload.name())),
                ("scale", Json::str(spec::scale_name(spec.scale))),
                ("cpu", Json::str(spec.cpu.label())),
                ("mode", Json::str(spec.mode.label())),
                ("harts", Json::Num(spec.harts as f64)),
                (
                    "corun",
                    match spec.corun {
                        Some(m) => Json::str(m.name()),
                        None => Json::Null,
                    },
                ),
            ]),
        ),
        (
            "guest",
            Json::obj(vec![
                ("sim_ticks", Json::Num(run.guest.sim_ticks as f64)),
                (
                    "committed_insts",
                    Json::Num(run.guest.committed_insts as f64),
                ),
                ("host_events", Json::Num(run.guest.host_events as f64)),
                (
                    "guest_mips",
                    Json::Num(run.guest.committed_insts as f64 / run.guest.sim_seconds() / 1e6),
                ),
                (
                    "checksums",
                    Json::Arr(
                        run.guest
                            .guest_checksums
                            .iter()
                            .map(|&c| Json::str(format!("{c:#018x}")))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "host",
            Json::obj(vec![
                ("name", Json::str(&host.name)),
                ("seconds", Json::Num(host.seconds())),
                ("cycles", Json::Num(host.cycles)),
                ("instructions", Json::Num(host.instructions)),
                ("ipc", Json::Num(host.ipc())),
                (
                    "topdown",
                    Json::obj(vec![
                        ("retiring_pct", Json::Num(retiring)),
                        ("frontend_pct", Json::Num(frontend)),
                        ("bad_speculation_pct", Json::Num(bad_spec)),
                        ("backend_pct", Json::Num(backend)),
                    ]),
                ),
                ("l1i_miss_rate", Json::Num(host.l1i_miss_rate)),
                ("l1d_miss_rate", Json::Num(host.l1d_miss_rate)),
                ("itlb_miss_rate", Json::Num(host.itlb_miss_rate)),
                ("dtlb_miss_rate", Json::Num(host.dtlb_miss_rate)),
                (
                    "branch_mispredict_rate",
                    Json::Num(host.branch_mispredict_rate),
                ),
                ("dsb_coverage", Json::Num(host.dsb_coverage)),
            ]),
        ),
        (
            "functions_touched",
            Json::Num(run.profile.functions_touched() as f64),
        ),
    ])
    .to_string_compact()
}

// ---------------------------------------------------------------------
// Inline endpoints
// ---------------------------------------------------------------------

fn healthz_json(shared: &Shared) -> String {
    let uptime = shared.started.elapsed();
    Json::obj(vec![
        ("status", Json::str("ok")),
        ("node_id", Json::str(&shared.node_id)),
        ("version", Json::str(env!("CARGO_PKG_VERSION"))),
        (
            "draining",
            Json::Bool(shared.draining.load(Ordering::Relaxed)),
        ),
        ("uptime_ms", Json::Num(uptime.as_millis() as f64)),
        ("uptime_seconds", Json::Num(uptime.as_secs_f64())),
    ])
    .to_string_compact()
}

/// Renders the self-profiler's span table as JSON: one node per
/// aggregated span path with total and self wall time, plus the
/// collapsed-stack export for flamegraph tooling.
fn profile_json() -> String {
    let nodes = gem5prof_obs::span::snapshot();
    let total_self: u64 = nodes.iter().map(|n| n.self_ns).sum();
    Json::obj(vec![
        ("total_self_ns", Json::Num(total_self as f64)),
        (
            "spans",
            Json::Arr(
                nodes
                    .iter()
                    .map(|n| {
                        Json::obj(vec![
                            (
                                "path",
                                Json::Arr(n.path.iter().map(|s| Json::str(*s)).collect()),
                            ),
                            ("count", Json::Num(n.count as f64)),
                            ("total_ns", Json::Num(n.total_ns as f64)),
                            ("self_ns", Json::Num(n.self_ns as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("collapsed", Json::str(&gem5prof_obs::span::collapsed())),
    ])
    .to_string_compact()
}

// ---------------------------------------------------------------------
// Continuous profiling (`/profile/history|diff|snapshot|bless`)
// ---------------------------------------------------------------------

/// Rejects any query key outside `allowed` with a 400 naming the
/// offending key — the same strictness `/figures/*` applies to
/// `fidelity`, so typos fail loudly instead of silently using defaults.
fn check_query(req: &Request, allowed: &[&str]) -> Result<(), Reply> {
    let Some(q) = req.query.as_deref() else {
        return Ok(());
    };
    for pair in q.split('&').filter(|p| !p.is_empty()) {
        let key = pair.split_once('=').map_or(pair, |(k, _)| k);
        if !allowed.contains(&key) {
            let accepted = if allowed.is_empty() {
                "none are accepted".to_string()
            } else {
                let list: Vec<String> = allowed.iter().map(|k| format!("`{k}`")).collect();
                format!("only {} accepted", list.join(", "))
            };
            return Err(plain(
                400,
                &format!("unknown query parameter `{key}` ({accepted})"),
            ));
        }
    }
    Ok(())
}

/// The profstore, or the bare 503 (no `Retry-After`: this is a
/// configuration condition, not backpressure — clients fail fast).
fn store_or_503(shared: &Shared) -> Result<&Arc<ProfStore>, Reply> {
    shared.profstore.as_ref().ok_or_else(|| {
        plain(
            503,
            "continuous profiling store not configured (start with --profile-dir)",
        )
    })
}

/// Resolves a snapshot selector (`latest`, `blessed`, or an id) or
/// renders the 404 naming it.
fn resolve_or_404(store: &ProfStore, sel: &str) -> Result<Arc<profstore::Snapshot>, Reply> {
    store
        .resolve(sel)
        .and_then(|id| store.get(id))
        .ok_or_else(|| plain(404, &format!("unknown snapshot `{sel}`")))
}

/// Captures the current profiling window: the span table and flattened
/// metrics go into the store, then the span table resets so the next
/// snapshot starts a fresh window. Consecutive snapshots are disjoint.
fn capture_snapshot(store: &ProfStore, label: &str, node_id: &str) -> u64 {
    let spans = gem5prof_obs::span::snapshot()
        .into_iter()
        .map(|n| profstore::SpanRow {
            path: n.path.join(";"),
            count: n.count,
            total_ns: n.total_ns,
            self_ns: n.self_ns,
        })
        .collect();
    let metrics = gem5prof_obs::global()
        .flat_values()
        .into_iter()
        .map(|(name, value)| profstore::MetricRow { name, value })
        .collect();
    gem5prof_obs::span::reset();
    store.store(label, node_id, spans, metrics)
}

fn snapshot_meta_json(s: &profstore::Snapshot) -> Json {
    Json::obj(vec![
        ("id", Json::Num(s.id as f64)),
        ("taken_unix_ms", Json::Num(s.taken_unix_ms as f64)),
        ("label", Json::str(&s.label)),
        ("node_id", Json::str(&s.node_id)),
        ("spans", Json::Num(s.spans.len() as f64)),
        ("total_self_ns", Json::Num(s.total_self_ns() as f64)),
    ])
}

fn profile_history(req: &Request, shared: &Shared) -> Reply {
    if let Err(r) = check_query(req, &[]) {
        return r;
    }
    let store = match store_or_503(shared) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let stats = store.stats();
    let body = Json::obj(vec![
        (
            "snapshots",
            Json::Arr(
                store
                    .history()
                    .iter()
                    .map(|s| snapshot_meta_json(s))
                    .collect(),
            ),
        ),
        (
            "blessed",
            store
                .blessed()
                .map_or(Json::Null, |id| Json::Num(id as f64)),
        ),
        ("capacity", Json::Num(store.capacity() as f64)),
        (
            "stats",
            Json::obj(vec![
                ("snapshots", Json::Num(stats.snapshots as f64)),
                ("writes", Json::Num(stats.writes as f64)),
                ("write_errors", Json::Num(stats.write_errors as f64)),
                ("corrupt", Json::Num(stats.corrupt as f64)),
                ("stale", Json::Num(stats.stale as f64)),
            ]),
        ),
    ])
    .to_string_compact();
    (200, body, Vec::new())
}

fn profile_snapshot(req: &Request, shared: &Shared) -> Reply {
    if let Err(r) = check_query(req, &["label"]) {
        return r;
    }
    let store = match store_or_503(shared) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let label = req.query_param("label").unwrap_or("manual");
    let id = capture_snapshot(store, label, &shared.node_id);
    (
        200,
        Json::obj(vec![
            ("id", Json::Num(id as f64)),
            ("label", Json::str(label)),
        ])
        .to_string_compact(),
        Vec::new(),
    )
}

fn profile_bless(req: &Request, shared: &Shared) -> Reply {
    if let Err(r) = check_query(req, &["id"]) {
        return r;
    }
    let store = match store_or_503(shared) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let sel = req.query_param("id").unwrap_or("latest");
    let snap = match resolve_or_404(store, sel) {
        Ok(s) => s,
        Err(r) => return r,
    };
    match store.bless(snap.id) {
        Ok(id) => (
            200,
            Json::obj(vec![("blessed", Json::Num(id as f64))]).to_string_compact(),
            Vec::new(),
        ),
        Err(e) => plain(500, &format!("cannot persist blessed marker: {e}")),
    }
}

fn profile_diff(req: &Request, shared: &Shared) -> Reply {
    if let Err(r) = check_query(
        req,
        &[
            "a",
            "b",
            "top",
            "format",
            "threshold",
            "min_delta_ns",
            "spans",
        ],
    ) {
        return r;
    }
    let store = match store_or_503(shared) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let a = match resolve_or_404(store, req.query_param("a").unwrap_or("blessed")) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let b = match resolve_or_404(store, req.query_param("b").unwrap_or("latest")) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let top: usize = match req.query_param("top").map(str::parse).transpose() {
        Ok(t) => t.unwrap_or(20),
        Err(_) => return plain(400, "bad top (want an unsigned integer)"),
    };
    let threshold: f64 = match req.query_param("threshold").map(str::parse).transpose() {
        Ok(t) => t.unwrap_or(profstore::DEFAULT_THRESHOLD_PCT),
        Err(_) => return plain(400, "bad threshold (want a percentage number)"),
    };
    let min_delta_ns: f64 = match req.query_param("min_delta_ns").map(str::parse).transpose() {
        Ok(t) => t.unwrap_or(profstore::DEFAULT_MIN_DELTA_NS),
        Err(_) => return plain(400, "bad min_delta_ns (want nanoseconds)"),
    };
    let spans: Vec<String> = match req.query_param("spans") {
        None => profstore::DEFAULT_HOT_SPANS
            .iter()
            .map(|s| s.to_string())
            .collect(),
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect(),
    };
    let report = profstore::diff::diff(&a, &b);
    match req.query_param("format").unwrap_or("json") {
        "collapsed" => (
            200,
            profstore::collapsed(&report, top),
            vec![("content-type".into(), "text/plain; charset=utf-8".into())],
        ),
        "json" => {
            let gate = profstore::gate(&a, &b, &spans, threshold, min_delta_ns);
            let opt = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
            let body = Json::obj(vec![
                ("a", snapshot_meta_json(&a)),
                ("b", snapshot_meta_json(&b)),
                (
                    "rows",
                    Json::Arr(
                        report
                            .rows
                            .iter()
                            .take(top)
                            .map(|r| {
                                Json::obj(vec![
                                    ("path", Json::str(&r.path)),
                                    ("a_count", Json::Num(r.a_count as f64)),
                                    ("a_self_ns", Json::Num(r.a_self_ns as f64)),
                                    ("b_count", Json::Num(r.b_count as f64)),
                                    ("b_self_ns", Json::Num(r.b_self_ns as f64)),
                                    ("a_self_per_call_ns", Json::Num(r.a_self_per_call_ns)),
                                    ("b_self_per_call_ns", Json::Num(r.b_self_per_call_ns)),
                                    ("delta_pct", opt(r.delta_pct)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "gate",
                    Json::obj(vec![
                        ("threshold_pct", Json::Num(gate.threshold_pct)),
                        ("min_delta_ns", Json::Num(gate.min_delta_ns)),
                        (
                            "hot_spans",
                            Json::Arr(spans.iter().map(|s| Json::str(s)).collect()),
                        ),
                        (
                            "checks",
                            Json::Arr(
                                gate.checks
                                    .iter()
                                    .map(|c| {
                                        Json::obj(vec![
                                            ("span", Json::str(&c.span)),
                                            ("a_self_per_call_ns", Json::Num(c.a_self_per_call_ns)),
                                            ("b_self_per_call_ns", Json::Num(c.b_self_per_call_ns)),
                                            ("delta_pct", opt(c.delta_pct)),
                                            ("regressed", Json::Bool(c.regressed)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        ("pass", Json::Bool(gate.pass)),
                    ]),
                ),
            ])
            .to_string_compact();
            (200, body, Vec::new())
        }
        other => plain(400, &format!("bad format `{other}` (json|collapsed)")),
    }
}

fn stats_json(shared: &Shared) -> String {
    let s = &shared.stats;
    let (cache_snap, cache_len, cache_cap) = shared.engine.cache_view();
    let trace = gem5prof::runner::cache_stats();
    let load = |a: &std::sync::atomic::AtomicU64| Json::Num(a.load(Ordering::Relaxed) as f64);
    Json::obj(vec![
        (
            "server",
            Json::obj(vec![
                (
                    "uptime_ms",
                    Json::Num(shared.started.elapsed().as_millis() as f64),
                ),
                (
                    "draining",
                    Json::Bool(shared.draining.load(Ordering::Relaxed)),
                ),
                ("workers", Json::Num(shared.engine.workers() as f64)),
                ("requests", load(&s.requests)),
                (
                    "responses",
                    Json::obj(vec![
                        ("200", load(&s.st_200)),
                        ("400", load(&s.st_400)),
                        ("404", load(&s.st_404)),
                        ("405", load(&s.st_405)),
                        ("429", load(&s.st_429)),
                        ("500", load(&s.st_500)),
                        ("503", load(&s.st_503)),
                        ("504", load(&s.st_504)),
                        ("other", load(&s.st_other)),
                    ]),
                ),
                (
                    "queue",
                    Json::obj(vec![
                        ("depth", Json::Num(shared.engine.queue_depth() as f64)),
                        ("capacity", Json::Num(shared.engine.queue_cap() as f64)),
                        ("in_flight", Json::Num(shared.engine.in_flight() as f64)),
                        ("rejected", load(&s.st_429)),
                    ]),
                ),
            ]),
        ),
        (
            "result_cache",
            Json::obj({
                let mut fields = vec![
                    ("engine_id", Json::Num(shared.engine.id() as f64)),
                    ("hits", Json::Num(cache_snap.hits as f64)),
                    ("misses", Json::Num(cache_snap.misses as f64)),
                    ("insertions", Json::Num(cache_snap.insertions as f64)),
                    ("evictions", Json::Num(cache_snap.evictions as f64)),
                    ("entries", Json::Num(cache_len as f64)),
                    ("capacity", Json::Num(cache_cap as f64)),
                    ("shards", Json::Num(shared.engine.shards() as f64)),
                    ("hit_rate", Json::Num(cache_snap.hit_rate())),
                    ("computes", Json::Num(shared.engine.computes() as f64)),
                    ("coalesced", Json::Num(shared.engine.coalesced() as f64)),
                    ("peer_fetch", {
                        let peer = shared.engine.peer_view();
                        Json::obj(vec![
                            ("hits", Json::Num(peer.hits as f64)),
                            ("misses", Json::Num(peer.misses as f64)),
                            ("errors", Json::Num(peer.errors as f64)),
                        ])
                    }),
                ];
                if let Some((disk, entries)) = shared.engine.disk_view() {
                    fields.push((
                        "disk",
                        Json::obj(vec![
                            ("hits", Json::Num(disk.hits as f64)),
                            ("misses", Json::Num(disk.misses as f64)),
                            ("writes", Json::Num(disk.writes as f64)),
                            ("write_errors", Json::Num(disk.write_errors as f64)),
                            ("corrupt", Json::Num(disk.corrupt as f64)),
                            ("stale", Json::Num(disk.stale as f64)),
                            ("entries", Json::Num(entries as f64)),
                        ]),
                    ));
                }
                fields
            }),
        ),
        (
            "trace_cache",
            Json::obj(vec![
                ("hits", Json::Num(trace.hits as f64)),
                ("misses", Json::Num(trace.misses as f64)),
                ("insertions", Json::Num(trace.insertions as f64)),
                ("resident_events", Json::Num(trace.resident_events as f64)),
            ]),
        ),
        (
            "profstore",
            match &shared.profstore {
                None => Json::Null,
                Some(store) => {
                    let ps = store.stats();
                    Json::obj(vec![
                        ("snapshots", Json::Num(ps.snapshots as f64)),
                        ("writes", Json::Num(ps.writes as f64)),
                        ("write_errors", Json::Num(ps.write_errors as f64)),
                        ("corrupt", Json::Num(ps.corrupt as f64)),
                        ("stale", Json::Num(ps.stale as f64)),
                        ("entries", Json::Num(store.len() as f64)),
                        ("capacity", Json::Num(store.capacity() as f64)),
                        (
                            "blessed",
                            store
                                .blessed()
                                .map_or(Json::Null, |id| Json::Num(id as f64)),
                        ),
                    ])
                }
            },
        ),
    ])
    .to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_specs_parse_and_reject() {
        let ok = parse_experiment(
            br#"{"platform":"m1_pro","workload":"dedup","cpu":"atomic","knobs":"thp"}"#,
        )
        .unwrap();
        assert_eq!(ok.platform, PlatformId::M1Pro);
        assert_eq!(ok.scale, gem5sim_workloads::Scale::Test, "scale defaults");
        assert!(ok.canonical_key().contains("knobs=thp48"));

        for (body, needle) in [
            (&b"not json"[..], "malformed JSON"),
            (&b"[1,2]"[..], "must be a JSON object"),
            (&br#"{"workload":"dedup","cpu":"o3"}"#[..], "platform"),
            (
                &br#"{"platform":"intel_xeon","workload":"quake","cpu":"o3"}"#[..],
                "workload",
            ),
            (
                &br#"{"platform":"intel_xeon","workload":"dedup","cpu":"486"}"#[..],
                "cpu",
            ),
            (
                &br#"{"platform":"intel_xeon","workload":"dedup","cpu":"o3","knobs":"warp"}"#[..],
                "knob",
            ),
        ] {
            let err = parse_experiment(body).unwrap_err();
            assert!(err.contains(needle), "`{err}` should mention {needle}");
        }
    }

    #[test]
    fn unknown_experiment_fields_are_rejected_by_name() {
        for (body, offender) in [
            (
                // typo'd axis: must 400 naming the key, not silently default
                &br#"{"platform":"intel_xeon","workload":"alu","cpu":"timing","hartz":4}"#[..],
                "hartz",
            ),
            (
                &br#"{"platform":"intel_xeon","workload":"dedup","cpu":"o3","fidelity":"paper"}"#[..],
                "fidelity",
            ),
        ] {
            let err = parse_experiment(body).unwrap_err();
            assert!(
                err.contains(&format!("`{offender}`")),
                "`{err}` must name the offending key"
            );
        }
    }

    #[test]
    fn corun_axes_parse_and_validate() {
        let ok = parse_experiment(
            br#"{"platform":"intel_xeon","workload":"mem_stride","cpu":"timing",
                "harts":4,"corun":"alu","corun_div":2}"#,
        )
        .unwrap();
        assert_eq!(ok.harts, 4);
        assert_eq!(ok.corun, Some(gem5sim_workloads::Microbench::Alu));
        assert_eq!(ok.corun_div, 2);
        assert!(ok.canonical_key().ends_with(":harts=4:corun=alu:div=2"));

        for (body, needle) in [
            (
                // harts outside 1..=8
                &br#"{"platform":"intel_xeon","workload":"alu","cpu":"timing","harts":0}"#[..],
                "harts",
            ),
            (
                &br#"{"platform":"intel_xeon","workload":"alu","cpu":"timing","harts":"two"}"#[..],
                "harts",
            ),
            (
                // corun partner must itself be a microbench name
                &br#"{"platform":"intel_xeon","workload":"alu","cpu":"timing","corun":"dedup"}"#[..],
                "corun",
            ),
            (
                // corun on a non-microbench workload is meaningless
                &br#"{"platform":"intel_xeon","workload":"dedup","cpu":"timing","corun":"alu"}"#[..],
                "microbench",
            ),
        ] {
            let err = parse_experiment(body).unwrap_err();
            assert!(err.contains(needle), "`{err}` should mention {needle}");
        }
    }

    #[test]
    fn figure_paths_parse() {
        let req = |path: &str, q: Option<&str>| Request {
            method: "GET".into(),
            path: path.into(),
            query: q.map(String::from),
            headers: vec![],
            body: vec![],
            close: false,
        };
        let r = req("/figures/fig01", None);
        assert_eq!(
            parse_figure_path("fig01", &r).unwrap(),
            Work::Figure(1, Fidelity::Quick)
        );
        let r = req("/figures/fig15", Some("fidelity=paper"));
        assert_eq!(
            parse_figure_path("fig15", &r).unwrap(),
            Work::Figure(15, Fidelity::Paper)
        );
        let r = req("/figures/fig7", None);
        assert_eq!(
            parse_figure_path("fig7", &r).unwrap(),
            Work::Figure(7, Fidelity::Quick)
        );
        let r = req("/figures/fig17", None);
        assert_eq!(
            parse_figure_path("fig17", &r).unwrap(),
            Work::Figure(17, Fidelity::Quick)
        );
        for bad in ["fig0", "fig18", "table1", ""] {
            let r = req("/figures/x", None);
            assert_eq!(parse_figure_path(bad, &r).unwrap_err().0, 404, "{bad}");
        }
        let r = req("/figures/fig01", Some("fidelity=warp"));
        assert_eq!(parse_figure_path("fig01", &r).unwrap_err().0, 400);
    }

    #[test]
    fn unknown_query_parameters_are_rejected_by_name() {
        let req = |q: &str| Request {
            method: "GET".into(),
            path: "/figures/fig01".into(),
            query: Some(q.into()),
            headers: vec![],
            body: vec![],
            close: false,
        };
        for (q, offender) in [
            ("fidelty=paper", "fidelty"),        // typo'd key
            ("fidelity=quick&depth=3", "depth"), // extra key after a valid one
            ("verbose", "verbose"),              // bare key without a value
        ] {
            let (status, msg) = parse_figure_path("fig01", &req(q)).unwrap_err();
            assert_eq!(status, 400, "{q}");
            assert!(
                msg.contains(&format!("`{offender}`")),
                "`{msg}` must name the offending key for {q}"
            );
        }
        // A valid query still parses, including a duplicate valid key.
        assert!(parse_figure_path("fig01", &req("fidelity=paper")).is_ok());
        assert!(parse_figure_path("fig01", &req("fidelity=paper&fidelity=quick")).is_ok());
    }

    #[test]
    fn profile_json_is_well_formed() {
        {
            let _s = gem5prof_obs::span("routes_profile_test");
        }
        let doc = minjson::parse(&profile_json()).unwrap();
        let spans = doc.get("spans").unwrap().as_arr().unwrap();
        assert!(!spans.is_empty());
        let seen = spans.iter().any(|s| {
            s.get("path")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .any(|p| p.as_str() == Some("routes_profile_test"))
        });
        assert!(seen, "the span recorded above must appear in /profile");
        for s in spans {
            let total = s.get("total_ns").unwrap().as_f64().unwrap();
            let own = s.get("self_ns").unwrap().as_f64().unwrap();
            assert!(own <= total, "self time cannot exceed total");
        }
    }

    #[test]
    fn table_json_has_paper_shape() {
        let body = table_json_by_index(2);
        let doc = minjson::parse(&body).unwrap();
        assert!(doc
            .get("title")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("Table II"));
        assert!(!doc.get("rows").unwrap().as_arr().unwrap().is_empty());
    }
}
