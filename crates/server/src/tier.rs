//! The tiered result cache: a sharded in-memory LRU over an optional
//! disk-backed warm tier.
//!
//! ```text
//! lookup:  mem (ShardedLru, per-shard mutex) ──hit──► body
//!             │ miss
//!             ▼
//!          disk (--cache-dir, versioned files) ──hit──► promote to mem, body
//!             │ miss / corrupt / stale
//!             ▼
//!          None (caller computes)
//!
//! insert:  mem immediately; disk written behind the response (the
//!          worker persists after every waiter has been answered, so
//!          the write is never on a requester's critical path)
//! ```
//!
//! Disk entries are self-describing files under the cache directory:
//!
//! ```text
//! magic "G5PC" | version u8 | key_len u32 LE | body_len u32 LE |
//! fnv1a64(key ++ body) u64 LE | key bytes | body bytes
//! ```
//!
//! The version byte is the **cache schema version**: any change to the
//! rendered-response format bumps [`DISK_FORMAT_VERSION`], and entries
//! carrying an older byte are ignored (counted as `stale`) rather than
//! served. Truncated or bit-flipped files fail the checksum and are
//! ignored as `corrupt`. Either way the daemon recomputes and the next
//! write-behind replaces the bad file — a damaged cache directory can
//! cost recomputes, never wrong answers.

use gem5prof::cache::{default_shards, CacheSnapshot, ShardedLru};
use gem5prof_chaos as chaos;
use gem5prof_obs as obs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Schema version of the on-disk entry format. Bump on any change to
/// the file layout **or** to the rendered JSON the entries contain.
pub(crate) const DISK_FORMAT_VERSION: u8 = 1;

/// File magic (so a stray file in the cache dir is never parsed).
const MAGIC: &[u8; 4] = b"G5PC";

/// Extension for cache entry files.
const EXT: &str = "g5pc";

/// FNV-1a over arbitrary bytes; used both for entry checksums and for
/// deriving stable file names from keys.
fn fnv1a(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Serializes one entry to the on-disk layout.
fn encode(key: &str, body: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(21 + key.len() + body.len());
    out.extend_from_slice(MAGIC);
    out.push(DISK_FORMAT_VERSION);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(&[key.as_bytes(), body.as_bytes()]).to_le_bytes());
    out.extend_from_slice(key.as_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

/// Why a disk entry was rejected.
#[derive(Debug, PartialEq, Eq)]
enum Reject {
    /// Wrong magic, impossible lengths, bad checksum, or non-UTF-8.
    Corrupt,
    /// Valid layout but a different schema version.
    Stale,
    /// Valid entry for a *different* key (hash-collision on file name).
    WrongKey,
}

/// Parses an on-disk entry, returning the body if it is a valid,
/// current-version entry for `key`.
fn decode(bytes: &[u8], key: &str) -> Result<String, Reject> {
    if bytes.len() < 21 || &bytes[0..4] != MAGIC {
        return Err(Reject::Corrupt);
    }
    let version = bytes[4];
    let key_len = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
    let body_len = u32::from_le_bytes(bytes[9..13].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(bytes[13..21].try_into().unwrap());
    // Validate the layout before the version so a truncated file of any
    // version is corrupt, not stale.
    let Some(total) = 21usize
        .checked_add(key_len)
        .and_then(|n| n.checked_add(body_len))
    else {
        return Err(Reject::Corrupt);
    };
    if bytes.len() != total {
        return Err(Reject::Corrupt);
    }
    let key_bytes = &bytes[21..21 + key_len];
    let body_bytes = &bytes[21 + key_len..];
    if fnv1a(&[key_bytes, body_bytes]) != checksum {
        return Err(Reject::Corrupt);
    }
    if version != DISK_FORMAT_VERSION {
        return Err(Reject::Stale);
    }
    if key_bytes != key.as_bytes() {
        return Err(Reject::WrongKey);
    }
    String::from_utf8(body_bytes.to_vec()).map_err(|_| Reject::Corrupt)
}

/// Atomic counters for the disk tier, readable as a [`DiskSnapshot`].
#[derive(Debug, Default)]
pub(crate) struct DiskStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub writes: AtomicU64,
    pub write_errors: AtomicU64,
    pub corrupt: AtomicU64,
    pub stale: AtomicU64,
}

/// Point-in-time disk-tier counters for `/stats` and `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct DiskSnapshot {
    /// Lookups served from disk (each one is also a promotion to mem).
    pub hits: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Entries persisted.
    pub writes: u64,
    /// Failed persists (the entry stays memory-only).
    pub write_errors: u64,
    /// Entries ignored for failing magic/length/checksum validation.
    pub corrupt: u64,
    /// Entries ignored for carrying an older schema version.
    pub stale: u64,
}

/// The disk-backed warm tier: one file per key under `dir`.
pub(crate) struct DiskTier {
    dir: PathBuf,
    stats: DiskStats,
}

impl DiskTier {
    /// Opens (creating if needed) the cache directory.
    pub fn open(dir: &Path) -> std::io::Result<DiskTier> {
        std::fs::create_dir_all(dir)?;
        Ok(DiskTier {
            dir: dir.to_path_buf(),
            stats: DiskStats::default(),
        })
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.{EXT}", fnv1a(&[key.as_bytes()])))
    }

    /// Reads the entry for `key`, if a valid current-version one exists.
    /// Corrupt and stale files are counted and left in place — the next
    /// write-behind for the key overwrites them.
    pub fn load(&self, key: &str) -> Option<String> {
        let bytes = match std::fs::read(self.path_for(key)) {
            Ok(b) => b,
            Err(_) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode(&bytes, key) {
            Ok(body) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(body)
            }
            Err(reject) => {
                match reject {
                    Reject::Corrupt => self.stats.corrupt.fetch_add(1, Ordering::Relaxed),
                    Reject::Stale => self.stats.stale.fetch_add(1, Ordering::Relaxed),
                    Reject::WrongKey => 0, // a different key's entry, plain miss
                };
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists `key → body` (write to a temp file, then rename, so a
    /// crash mid-write leaves either the old entry or none — never a
    /// torn one). Failures are counted and swallowed: the disk tier is
    /// an optimization, and losing a write costs a recompute after the
    /// next restart, nothing more.
    pub fn store(&self, key: &str, body: &str) {
        let result = (|| -> std::io::Result<()> {
            if let Some(e) = chaos::io_error("cache.disk_write") {
                return Err(e);
            }
            let path = self.path_for(key);
            let tmp = path.with_extension(format!("tmp{}", std::process::id()));
            std::fs::write(&tmp, encode(key, body))?;
            std::fs::rename(&tmp, &path)
        })();
        match result {
            Ok(()) => {
                self.stats.writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.stats.write_errors.fetch_add(1, Ordering::Relaxed);
                if chaos::is_chaos_error(&e) {
                    chaos::recovered("cache.disk_write");
                }
            }
        }
    }

    /// Entry files currently in the cache directory (scrape-time only).
    pub fn entries(&self) -> u64 {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some(EXT))
                    .count() as u64
            })
            .unwrap_or(0)
    }

    pub fn snapshot(&self) -> DiskSnapshot {
        DiskSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            writes: self.stats.writes.load(Ordering::Relaxed),
            write_errors: self.stats.write_errors.load(Ordering::Relaxed),
            corrupt: self.stats.corrupt.load(Ordering::Relaxed),
            stale: self.stats.stale.load(Ordering::Relaxed),
        }
    }
}

/// The engine's result cache: sharded memory tier + optional disk tier,
/// with per-tier lookup histograms in the process registry.
pub(crate) struct TieredCache {
    mem: ShardedLru<String, Arc<String>>,
    disk: Option<DiskTier>,
    lookup_mem: Arc<obs::Histogram>,
    lookup_disk: Arc<obs::Histogram>,
}

impl TieredCache {
    /// Builds the cache. A `cache_dir` that cannot be created disables
    /// the disk tier with a warning rather than failing the daemon.
    pub fn new(cap: usize, cache_dir: Option<&Path>) -> TieredCache {
        let disk = cache_dir.and_then(|dir| match DiskTier::open(dir) {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!(
                    "warning: cannot open cache dir {}: {e} — disk tier disabled",
                    dir.display()
                );
                None
            }
        });
        let r = obs::global();
        let b = obs::metrics::duration_buckets();
        TieredCache {
            mem: ShardedLru::new(default_shards(cap), cap),
            disk,
            lookup_mem: r.histogram_with(
                "served_tier_lookup_seconds",
                "result-cache lookup latency by tier",
                b,
                &[("tier", "mem")],
            ),
            lookup_disk: r.histogram_with(
                "served_tier_lookup_seconds",
                "result-cache lookup latency by tier",
                b,
                &[("tier", "disk")],
            ),
        }
    }

    /// Full tiered lookup: memory first, then disk with promote-on-hit.
    pub fn get(&self, key: &String) -> Option<Arc<String>> {
        let t0 = Instant::now();
        let mem = self.mem.get(key);
        self.lookup_mem.observe_duration(t0.elapsed());
        if mem.is_some() {
            return mem;
        }
        let disk = self.disk.as_ref()?;
        let t0 = Instant::now();
        let body = disk.load(key);
        self.lookup_disk.observe_duration(t0.elapsed());
        let body = Arc::new(body?);
        // Promote: the next lookup for this key is a memory hit.
        self.mem.insert(key.clone(), Arc::clone(&body));
        Some(body)
    }

    /// Memory tier only — the cheap re-check paths (under the
    /// in-flight lock, and nothing else) use this to avoid disk I/O.
    pub fn get_mem(&self, key: &String) -> Option<Arc<String>> {
        self.mem.get(key)
    }

    /// Warms the memory tier (the disk write is separate — see
    /// [`write_behind`](Self::write_behind) — so replies never wait on
    /// the filesystem).
    pub fn insert_mem(&self, key: &str, body: &Arc<String>) {
        self.mem.insert(key.to_string(), Arc::clone(body));
    }

    /// Persists to the disk tier, if one is configured. Called by the
    /// worker after every waiter has been answered.
    pub fn write_behind(&self, key: &str, body: &str) {
        if let Some(disk) = &self.disk {
            disk.store(key, body);
        }
    }

    pub fn mem_snapshot(&self) -> CacheSnapshot {
        self.mem.snapshot()
    }

    pub fn len(&self) -> usize {
        self.mem.len()
    }

    pub fn capacity(&self) -> usize {
        self.mem.capacity()
    }

    pub fn shard_count(&self) -> usize {
        self.mem.shard_count()
    }

    /// Disk counters plus resident file count, if the tier is armed.
    pub fn disk_view(&self) -> Option<(DiskSnapshot, u64)> {
        self.disk.as_ref().map(|d| (d.snapshot(), d.entries()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gem5prof-tier-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn encode_decode_round_trips() {
        let key = "figure:fig01:quick";
        let body = r#"{"title":"Fig. 1","rows":[1,2,3]}"#;
        let bytes = encode(key, body);
        assert_eq!(decode(&bytes, key).unwrap(), body);
        assert_eq!(decode(&bytes, "figure:fig02:quick"), Err(Reject::WrongKey));
    }

    #[test]
    fn decode_rejects_corruption_and_stale_versions() {
        let bytes = encode("k", "body");
        // Truncation, bad magic, and a flipped body byte are corrupt.
        assert_eq!(decode(&bytes[..bytes.len() - 1], "k"), Err(Reject::Corrupt));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode(&bad_magic, "k"), Err(Reject::Corrupt));
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        assert_eq!(decode(&flipped, "k"), Err(Reject::Corrupt));
        // A version bump makes the entry stale, not corrupt — but only
        // if the checksum still passes (version is outside the sum).
        let mut old = bytes.clone();
        old[4] = DISK_FORMAT_VERSION.wrapping_add(1);
        assert_eq!(decode(&old, "k"), Err(Reject::Stale));
        assert_eq!(decode(&[], "k"), Err(Reject::Corrupt));
    }

    #[test]
    fn disk_tier_stores_loads_and_counts_rejects() {
        let dir = tmpdir("store");
        let tier = DiskTier::open(&dir).unwrap();
        assert_eq!(tier.load("k1"), None, "cold dir misses");
        tier.store("k1", "{\"v\":1}");
        assert_eq!(tier.load("k1").as_deref(), Some("{\"v\":1}"));
        assert_eq!(tier.entries(), 1);

        // Corrupt the entry on disk: ignored and counted, then repaired
        // by the next store.
        let path = tier.path_for("k1");
        std::fs::write(&path, b"garbage").unwrap();
        assert_eq!(tier.load("k1"), None);
        tier.store("k1", "{\"v\":2}");
        assert_eq!(tier.load("k1").as_deref(), Some("{\"v\":2}"));

        // A stale-version entry is ignored and counted separately.
        let mut old = encode("k1", "{\"v\":9}");
        old[4] = DISK_FORMAT_VERSION.wrapping_add(1);
        std::fs::write(&path, old).unwrap();
        assert_eq!(tier.load("k1"), None);

        let snap = tier.snapshot();
        assert_eq!(snap.corrupt, 1);
        assert_eq!(snap.stale, 1);
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.write_errors, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiered_cache_promotes_disk_hits_to_memory() {
        let dir = tmpdir("promote");
        // Warm the disk tier through one cache, then read through a
        // fresh one (a "restarted daemon").
        {
            let warm = TieredCache::new(8, Some(&dir));
            warm.insert_mem("key", &Arc::new("{\"x\":1}".to_string()));
            warm.write_behind("key", "{\"x\":1}");
        }
        let cold = TieredCache::new(8, Some(&dir));
        let key = "key".to_string();
        let body = cold.get(&key).expect("disk tier must serve the restart");
        assert_eq!(*body, "{\"x\":1}");
        let (disk, entries) = cold.disk_view().unwrap();
        assert_eq!(disk.hits, 1);
        assert_eq!(entries, 1);
        // Promoted: the second lookup is a memory hit, not a disk read.
        let again = cold.get(&key).unwrap();
        assert_eq!(*again, "{\"x\":1}");
        let (disk, _) = cold.disk_view().unwrap();
        assert_eq!(disk.hits, 1, "promote must make the repeat a mem hit");
        assert_eq!(cold.mem_snapshot().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_cache_dir_means_no_disk_tier() {
        let c = TieredCache::new(4, None);
        assert!(c.disk_view().is_none());
        assert_eq!(c.get(&"nope".to_string()), None);
    }
}
