//! The `gem5prof-cluster` binary: N daemons behind a consistent-hash
//! router, as one process tree.
//!
//! ```text
//! gem5prof-cluster [--addr HOST:PORT] (--spawn N | --members A,B,...)
//!                  [--vnodes N] [--probe-ms N] [--fail-threshold N]
//!                  [--cache-dir PATH] [--node-arg ARG]... [--port-file PATH]
//! ```
//!
//! `--spawn N` launches N `gem5prof-served` children (found next to
//! this binary) on ephemeral ports, collects their bound addresses via
//! port files, and routes across them; `--members` joins daemons that
//! are already running. Each spawned node gets a stable `--node-id
//! node-<i>` and, with `--cache-dir BASE`, its own disk warm tier at
//! `BASE/node<i>` — which is what makes peer warm-tier fetch useful
//! across restarts. `--node-arg` appends one raw argument to every
//! child's command line (repeat it: `--node-arg --queue --node-arg 64`).
//!
//! Shutdown (SIGINT/SIGTERM, or a client `POST /drain` to the router)
//! drains the fleet gracefully: children get SIGTERM and finish
//! in-flight work before the router exits. Spawned children inherit the
//! environment, so `GEM5PROF_CHAOS` arms fault injection fleet-wide.

use gem5prof_served::cluster::{serve_cluster, ClusterConfig, ClusterHandle, MemberSpec};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Sends SIGTERM so the child drains gracefully (`Child::kill` would
/// SIGKILL and drop in-flight work on the floor).
#[cfg(unix)]
fn terminate(pid: u32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        kill(pid as i32, SIGTERM);
    }
}

#[cfg(not(unix))]
fn terminate(_pid: u32) {}

fn usage() -> ! {
    eprintln!(
        "usage: gem5prof-cluster [--addr HOST:PORT] (--spawn N | --members A,B,...) \
         [--vnodes N] [--probe-ms N] [--fail-threshold N] [--cache-dir PATH] \
         [--node-arg ARG]... [--port-file PATH]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("gem5prof-cluster: {msg}");
    std::process::exit(1);
}

/// Spawns `n` daemons on ephemeral ports and waits for their port
/// files. Returns the children alongside their member specs.
fn spawn_nodes(
    n: usize,
    cache_dir: Option<&PathBuf>,
    node_args: &[String],
) -> (Vec<Child>, Vec<MemberSpec>) {
    let served = std::env::current_exe()
        .ok()
        .and_then(|exe| Some(exe.parent()?.join("gem5prof-served")))
        .filter(|p| p.exists())
        .unwrap_or_else(|| fail("cannot find gem5prof-served next to this binary"));
    let scratch = std::env::temp_dir().join(format!("gem5prof-cluster-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        fail(&format!("cannot create {}: {e}", scratch.display()));
    }

    let mut children = Vec::new();
    let mut port_files = Vec::new();
    for i in 0..n {
        let port_file = scratch.join(format!("node{i}.port"));
        let _ = std::fs::remove_file(&port_file);
        let mut cmd = Command::new(&served);
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--port-file")
            .arg(&port_file)
            .arg("--node-id")
            .arg(format!("node-{i}"));
        if let Some(base) = cache_dir {
            cmd.arg("--cache-dir").arg(base.join(format!("node{i}")));
        }
        cmd.args(node_args);
        match cmd.spawn() {
            Ok(child) => {
                children.push(child);
                port_files.push(port_file);
            }
            Err(e) => {
                for c in &children {
                    terminate(c.id());
                }
                fail(&format!("cannot spawn node {i}: {e}"));
            }
        }
    }

    // A node is up once its port file appears with a parseable addr.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut members = Vec::new();
    for (i, port_file) in port_files.iter().enumerate() {
        let addr = loop {
            match std::fs::read_to_string(port_file) {
                Ok(s) if s.contains(':') => break s.trim().to_string(),
                _ if Instant::now() > deadline => {
                    for c in &children {
                        terminate(c.id());
                    }
                    fail(&format!("node {i} did not write its port file in time"));
                }
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        };
        members.push(MemberSpec {
            addr,
            pid: Some(children[i].id()),
        });
    }
    (children, members)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ClusterConfig::default();
    let mut spawn_n: Option<usize> = None;
    let mut member_list: Vec<String> = Vec::new();
    let mut cache_dir: Option<PathBuf> = None;
    let mut node_args: Vec<String> = Vec::new();
    let mut port_file: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        let parse_usize = |i: usize| -> usize { value(i).parse().unwrap_or_else(|_| usage()) };
        match args[i].as_str() {
            "--addr" => cfg.addr = value(i),
            "--spawn" => spawn_n = Some(parse_usize(i).max(1)),
            "--members" => {
                member_list = value(i)
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect()
            }
            "--vnodes" => cfg.vnodes = parse_usize(i).max(1),
            "--probe-ms" => cfg.probe_interval = Duration::from_millis(parse_usize(i) as u64),
            "--fail-threshold" => cfg.fail_threshold = parse_usize(i) as u32,
            "--cache-dir" => cache_dir = Some(value(i).into()),
            "--node-arg" => node_args.push(value(i)),
            "--port-file" => port_file = Some(value(i)),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 2;
    }
    if spawn_n.is_some() == !member_list.is_empty() {
        usage(); // exactly one of --spawn / --members
    }

    install_signal_handlers();

    let mut children: Vec<Child> = Vec::new();
    cfg.members = match spawn_n {
        Some(n) => {
            let (spawned, members) = spawn_nodes(n, cache_dir.as_ref(), &node_args);
            children = spawned;
            members
        }
        None => member_list.into_iter().map(MemberSpec::new).collect(),
    };

    let handle: ClusterHandle = match serve_cluster(cfg.clone()) {
        Ok(h) => h,
        Err(e) => {
            for c in &children {
                terminate(c.id());
            }
            fail(&format!("cannot bind {}: {e}", cfg.addr));
        }
    };
    let addr = handle.addr();
    if let Some(path) = &port_file {
        if let Err(e) = std::fs::write(path, addr.to_string()) {
            fail(&format!("cannot write port file {path}: {e}"));
        }
    }
    eprintln!(
        "gem5prof-cluster: routing on http://{addr} across {} members ({}), \
         vnodes={}, probe={}ms",
        handle.alive_members(),
        cfg.members
            .iter()
            .map(|m| m.addr.as_str())
            .collect::<Vec<_>>()
            .join(", "),
        cfg.vnodes,
        cfg.probe_interval.as_millis(),
    );

    while !SHUTDOWN.load(Ordering::SeqCst) && !handle.drain_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("gem5prof-cluster: draining fleet…");
    for child in &children {
        terminate(child.id());
    }
    for child in &mut children {
        let _ = child.wait();
    }
    handle.shutdown();
    eprintln!("gem5prof-cluster: drained, exiting");
}
