//! Minimal JSON: a value type, a writer, and a recursive-descent parser.
//!
//! The build environment is offline, so the serving layer cannot depend
//! on `serde`. This module is the same philosophy as `testkit` replacing
//! `proptest`: the small subset the repository actually needs, std-only.
//!
//! Objects preserve insertion order (they are `Vec<(String, Json)>`), so
//! a parse → write round trip of output *we* produced is byte-stable.
//! Numbers are `f64`; integers up to 2⁵³ round-trip exactly, which
//! covers every counter this codebase serves.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers render without a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_value(out: &mut String, v: &Json, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(out, *n),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => write_seq(out, items.iter(), indent, depth, '[', ']', |o, x, i, d| {
            write_value(o, x, i, d)
        }),
        Json::Obj(pairs) => write_seq(
            out,
            pairs.iter(),
            indent,
            depth,
            '{',
            '}',
            |o, (k, x), i, d| {
                write_string(o, k);
                o.push(':');
                if i.is_some() {
                    o.push(' ');
                }
                write_value(o, x, i, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut each: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * (depth + 1)));
        }
        each(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * depth));
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-surprising encoding.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's shortest-round-trip Display: parses back to the same bits.
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (a single value with optional surrounding
/// whitespace). Errors carry the byte offset of the problem.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

/// Nesting depth limit — a request body is not a place for a stack test.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Json::Null)
                } else {
                    self.err("invalid literal")
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Json::Bool(true))
                } else {
                    self.err("invalid literal")
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Json::Bool(false))
                } else {
                    self.err("invalid literal")
                }
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    if self.peek() != Some(b'"') {
                        return self.err("expected object key");
                    }
                    let k = self.string()?;
                    self.skip_ws();
                    if self.peek() != Some(b':') {
                        return self.err("expected `:`");
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let v = self.value(depth + 1)?;
                    pairs.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => self.err("unexpected character"),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !(self.eat("\\u")) {
                                    return self.err("lone high surrogate");
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                            continue; // hex4 advanced past the digits
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so this is
                    // always a valid boundary walk).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return self.err("unescaped control character");
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits, advancing past them.
    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| format!("invalid \\u escape at offset {}", self.pos))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| format!("invalid \\u escape at offset {}", self.pos))?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_and_pretty() {
        let v = Json::obj(vec![
            ("a", Json::Num(1.0)),
            ("b", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("c", Json::str("x\"y\n")),
        ]);
        assert_eq!(
            v.to_string_compact(),
            r#"{"a":1,"b":[true,null],"c":"x\"y\n"}"#
        );
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"a\": 1,"));
    }

    #[test]
    fn parses_documents() {
        let v = parse(r#" {"n": -2.5e2, "s": "h\u00e9\t", "a": [1,2,3], "e": {}} "#).unwrap();
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-250.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hé\t"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("e"), Some(&Json::Obj(vec![])));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn parses_surrogate_pairs() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "{\"a\" 1}",
            "\"\\q\"",
            "1 2",
            "{'a':1}",
            "\"\u{1}\"",
            "[1]]",
            r#""\ud83d""#,
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn round_trips_itself() {
        let v = Json::obj(vec![
            ("pi", Json::Num(3.141592653589793)),
            ("big", Json::Num(9007199254740991.0)),
            ("neg", Json::Num(-17.0)),
            ("unicode", Json::str("héllo ✓")),
            (
                "nested",
                Json::Arr(vec![Json::obj(vec![("k", Json::Null)])]),
            ),
        ]);
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
    }
}
