//! The `gem5prof-served` daemon binary.
//!
//! ```text
//! gem5prof-served [--addr HOST:PORT] [--workers N] [--threads N]
//!                 [--queue N] [--cache-cap N] [--cache-dir PATH]
//!                 [--deadline-ms N] [--no-coalesce] [--worker-delay-ms N]
//!                 [--port-file PATH] [--node-id ID] [--peers A,B,...]
//!                 [--profile-dir PATH] [--profile-cap N]
//!                 [--max-conns N] [--read-timeout-ms N]
//!                 [--write-timeout-ms N] [--thread-per-conn] [--sndbuf BYTES]
//! ```
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; `--port-file` writes
//! the actually-bound `host:port` to a file once listening, which is how
//! scripts (`scripts/verify.sh`) find the daemon without racing on a
//! fixed port. `--cache-dir` arms the disk warm tier: rendered responses
//! persist across restarts, so a rebooted daemon serves figures without
//! recompute. `--no-coalesce` disables duplicate suppression entirely —
//! no single-flight joins, no worker-side cache re-check — restoring
//! the naive thundering-herd engine (benchmark baseline only);
//! `--worker-delay-ms`
//! adds an artificial pause before each job (benchmarks and tests).
//! `--profile-dir` arms the continuous profiling store: span/metrics
//! snapshots persist there as a bounded ring (`--profile-cap` entries)
//! and the `/profile/history|diff|snapshot|bless` routes come alive.
//! SIGINT/SIGTERM trigger a graceful drain: stop accepting,
//! finish in-flight work, reject new requests with 503, then exit.

use gem5prof_served::{serve, ServeConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler; polled by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        // Only an atomic store: async-signal-safe.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage() -> ! {
    eprintln!(
        "usage: gem5prof-served [--addr HOST:PORT] [--workers N] [--threads N] \
         [--queue N] [--cache-cap N] [--cache-dir PATH] [--deadline-ms N] \
         [--no-coalesce] [--worker-delay-ms N] [--port-file PATH] \
         [--node-id ID] [--peers HOST:PORT,HOST:PORT,...] \
         [--profile-dir PATH] [--profile-cap N] [--max-conns N] \
         [--read-timeout-ms N] [--write-timeout-ms N] [--thread-per-conn] \
         [--sndbuf BYTES]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeConfig::default();
    let mut port_file: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        let parse_usize = |i: usize| -> usize { value(i).parse().unwrap_or_else(|_| usage()) };
        // Boolean flags advance by 1; value-taking flags by 2.
        let mut step = 2;
        match args[i].as_str() {
            "--addr" => cfg.addr = value(i),
            "--workers" => cfg.workers = parse_usize(i),
            "--threads" => {
                // Mirrors `repro --threads`: 0 falls back to available
                // parallelism with a warning.
                let n = parse_usize(i);
                if n == 0 {
                    eprintln!("warning: --threads 0 — falling back to available parallelism");
                }
                gem5prof::set_threads(n);
            }
            "--queue" => cfg.queue_cap = parse_usize(i).max(1),
            "--cache-cap" => cfg.cache_cap = parse_usize(i).max(1),
            "--cache-dir" => cfg.cache_dir = Some(value(i).into()),
            "--deadline-ms" => cfg.deadline = Duration::from_millis(parse_usize(i) as u64),
            "--no-coalesce" => {
                cfg.coalesce = false;
                step = 1;
            }
            "--worker-delay-ms" => cfg.worker_delay = Duration::from_millis(parse_usize(i) as u64),
            "--max-conns" => cfg.max_conns = parse_usize(i).max(1),
            "--read-timeout-ms" => {
                cfg.read_timeout = Duration::from_millis(parse_usize(i).max(1) as u64)
            }
            "--write-timeout-ms" => {
                cfg.write_timeout = Duration::from_millis(parse_usize(i).max(1) as u64)
            }
            "--thread-per-conn" => {
                // Benchmark baseline only: the pre-readiness-core
                // blocking serving loop, one OS thread per connection.
                cfg.thread_per_conn = true;
                step = 1;
            }
            "--sndbuf" => cfg.sndbuf = Some(parse_usize(i).max(1)),
            "--profile-dir" => cfg.profile_dir = Some(value(i).into()),
            "--profile-cap" => cfg.profile_cap = parse_usize(i).max(1),
            "--port-file" => port_file = Some(value(i)),
            "--node-id" => cfg.node_id = Some(value(i)),
            "--peers" => {
                cfg.peers = value(i)
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect()
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += step;
    }

    install_signal_handlers();

    // Opt-in fault injection: a production daemon pays nothing unless
    // GEM5PROF_CHAOS is set, and an armed one says so loudly.
    if let Some(plan) = gem5prof_chaos::arm_from_env() {
        gem5prof_chaos::install_quiet_panic_hook();
        eprintln!(
            "gem5prof-served: CHAOS ARMED (seed={}, default probability {}) — \
             this daemon will inject faults into itself",
            plan.seed, plan.default_prob
        );
    }

    let handle = match serve(cfg.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("gem5prof-served: cannot bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    let addr = handle.addr();
    if let Some(path) = &port_file {
        if let Err(e) = std::fs::write(path, addr.to_string()) {
            eprintln!("gem5prof-served: cannot write port file {path}: {e}");
            std::process::exit(1);
        }
    }
    eprintln!(
        "gem5prof-served: listening on http://{addr} \
         (queue={}, cache={}, deadline={}ms, coalesce={}, disk-tier={}, profstore={})",
        cfg.queue_cap,
        cfg.cache_cap,
        cfg.deadline.as_millis(),
        cfg.coalesce,
        cfg.cache_dir
            .as_deref()
            .map_or("off".into(), |p| p.display().to_string()),
        cfg.profile_dir
            .as_deref()
            .map_or("off".into(), |p| p.display().to_string()),
    );

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("gem5prof-served: draining…");
    handle.shutdown();
    eprintln!("gem5prof-served: drained, exiting");
}
