//! Host cache sweep: the FireSim study (Fig. 14) — how fast could gem5
//! run if we could redesign the host CPU's caches?
//!
//! ```sh
//! cargo run --release --example cache_sweep
//! ```

use gem5_profiling::prof::experiment::{profile, GuestSpec, HostSetup};
use gem5_profiling::sim::config::{CpuModel, SimMode};
use gem5_profiling::workloads::{Scale, Workload};
use platforms::firesim;

fn main() {
    let sweep = firesim::fig14_sweep();
    let setups: Vec<HostSetup> = sweep.iter().cloned().map(HostSetup::raw).collect();

    println!("gem5 running Sieve of Eratosthenes on a configurable RISC-V host");
    println!("(speedup relative to the 8KB/2:8KB/2:512KB/8 baseline)\n");
    println!(
        "{:<28} {:>8} {:>8} {:>8}",
        "host caches (I:D:L2)", "Atomic", "Timing", "O3"
    );

    // Fan the three CPU-model sweeps across cores; results assemble in
    // input order, so output is identical at any thread count.
    let cpus = [CpuModel::Atomic, CpuModel::Timing, CpuModel::O3];
    let results: Vec<Vec<f64>> = gem5_profiling::prof::parallel_map(&cpus, |&cpu| {
        let guest = GuestSpec::new(Workload::Sieve, Scale::SimSmall, cpu, SimMode::Se);
        let run = profile(&guest, &setups);
        run.hosts.iter().map(|h| h.seconds()).collect()
    });
    for (ci, cfg) in sweep.iter().enumerate() {
        print!("{:<28}", cfg.name);
        for r in &results {
            print!(" {:>7.1}%", 100.0 * (r[0] / r[ci] - 1.0));
        }
        println!();
    }
    println!("\n(paper: growing L1s dominates; doubling L2 does nothing; the 64KB/16 point");
    println!(" improves Atomic/Timing/O3 simulation speed by 68.7/68.2/43.8%)");
}
