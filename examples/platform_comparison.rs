//! Platform comparison: the paper's motivating observation (Fig. 1) —
//! the same gem5 simulation runs much faster on an Apple M1 than on a
//! high-end Xeon server, and the profile shows why.
//!
//! ```sh
//! cargo run --release --example platform_comparison
//! ```

use gem5_profiling::prof::experiment::{profile, GuestSpec, HostSetup};
use gem5_profiling::sim::config::{CpuModel, SimMode};
use gem5_profiling::workloads::{Scale, Workload};
use platforms::PlatformId;

fn main() {
    let setups: Vec<HostSetup> = PlatformId::ALL
        .iter()
        .map(|p| HostSetup::platform(&p.platform()))
        .collect();

    println!("simulating canneal (simsmall) with four CPU models; host seconds per platform:\n");
    println!(
        "{:<8} {:>14} {:>12} {:>12}  {}",
        "CPU", "Intel_Xeon", "M1_Pro", "M1_Ultra", "speedup (Ultra vs Xeon)"
    );
    // One guest simulation per CPU model, run in parallel by the
    // work-stealing pool; each feeds all three platforms from one stream.
    let rows: Vec<Vec<f64>> = gem5_profiling::prof::parallel_map(&CpuModel::ALL, |&cpu| {
        let guest = GuestSpec::new(Workload::Canneal, Scale::SimSmall, cpu, SimMode::Fs);
        let run = profile(&guest, &setups);
        run.hosts.iter().map(|h| h.seconds()).collect()
    });
    for (cpu, s) in CpuModel::ALL.iter().zip(&rows) {
        println!(
            "{:<8} {:>13.4}s {:>11.4}s {:>11.4}s  {:>6.2}x",
            cpu.label(),
            s[0],
            s[1],
            s[2],
            s[0] / s[2]
        );
    }

    println!("\nwhy: the front-end stall sources on each platform (O3 model):");
    // Served from the trace cache — the O3 guest was already simulated
    // for the table above, so this profile is a pure replay.
    let run = profile(
        &GuestSpec::new(
            Workload::Canneal,
            Scale::SimSmall,
            CpuModel::O3,
            SimMode::Fs,
        ),
        &setups,
    );
    for h in &run.hosts {
        let td = &h.topdown;
        println!(
            "  {:<11} iCache {:>5.1}%  iTLB {:>5.1}%  unknown-br {:>5.1}%  IPC {:.2}",
            h.name,
            td.pct(td.fe_latency.icache),
            td.pct(td.fe_latency.itlb),
            td.pct(td.fe_latency.unknown_branches),
            h.ipc()
        );
    }
    println!("\n(paper: 6x larger iCache, 4x larger dCache and 16 KB pages nearly eliminate");
    println!(" the Xeon's dominant stall sources, giving M1 a 1.7-3x simulation-speed win)");
}
