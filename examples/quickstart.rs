//! Quickstart: simulate a workload on the gem5-like simulator and
//! profile that simulation on the Intel Xeon host model — the paper's
//! core methodology in ~30 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gem5_profiling::prof::experiment::{profile, GuestSpec, HostSetup};
use gem5_profiling::prof::figures::Fidelity;
use gem5_profiling::sim::config::{CpuModel, SimMode};
use gem5_profiling::workloads::{Scale, Workload};

fn main() {
    let _ = Fidelity::Quick; // see `repro` for full figure regeneration

    // 1. Pick what gem5 simulates: an O3 CPU booting nothing fancy —
    //    the water_nsquared kernel in full-system mode.
    let guest = GuestSpec::new(
        Workload::WaterNsquared,
        Scale::SimSmall,
        CpuModel::O3,
        SimMode::Fs,
    );

    // 2. Pick the machine gem5 runs *on*: the paper's Xeon Gold 6242R.
    let host = HostSetup::platform(&platforms::intel_xeon());

    // 3. Run the simulation and profile it.
    let run = profile(&guest, std::slice::from_ref(&host));

    println!(
        "guest: {} instructions committed, {} events, IPC {:.2}",
        run.guest.committed_insts,
        run.guest.host_events,
        run.guest.guest_ipc()
    );
    let h = &run.hosts[0];
    println!(
        "host ({}): {:.0} cycles, IPC {:.2}, simulated in {:.4}s of host time",
        h.name,
        h.cycles,
        h.ipc(),
        h.seconds()
    );
    let (r, fe, bs, be) = h.topdown.level1_pct();
    println!(
        "Top-Down: retiring {r:.1}%  front-end {fe:.1}%  bad-spec {bs:.1}%  back-end {be:.1}%"
    );
    println!(
        "front-end latency detail: iCache {:.1}%  iTLB {:.1}%  unknown-branches {:.1}%",
        h.topdown.pct(h.topdown.fe_latency.icache),
        h.topdown.pct(h.topdown.fe_latency.itlb),
        h.topdown.pct(h.topdown.fe_latency.unknown_branches),
    );
    println!(
        "DSB coverage {:.1}%  |  functions touched: {}",
        100.0 * h.dsb_coverage,
        run.profile.functions_touched()
    );
    println!("\nhottest simulator functions:");
    for (name, calls, share) in run.profile.hottest(&run.registry, 8) {
        println!("  {name:<44} {calls:>9} calls  {:>5.2}%", 100.0 * share);
    }
}
