//! System tuning: back the simulator's code with huge pages
//! (the paper's Figs. 10–11) and recompile with `-O3` (Fig. 12) —
//! speedups without touching hardware or the simulator's design.
//!
//! ```sh
//! cargo run --release --example hugepages_tuning
//! ```

use gem5_profiling::prof::experiment::{profile, GuestSpec, HostSetup};
use gem5_profiling::sim::config::{CpuModel, SimMode};
use gem5_profiling::workloads::{Scale, Workload};
use platforms::{intel_xeon, SystemKnobs};

fn main() {
    let xeon = intel_xeon();
    let setups = [
        HostSetup::with_knobs(&xeon, &SystemKnobs::new()),
        HostSetup::with_knobs(&xeon, &SystemKnobs::new().with_thp()),
        HostSetup::with_knobs(&xeon, &SystemKnobs::new().with_ehp()),
        HostSetup::with_knobs(&xeon, &SystemKnobs::new().with_o3_binary()),
        HostSetup::with_knobs(&xeon, &SystemKnobs::new().with_thp().with_o3_binary()),
    ];
    let labels = ["baseline", "THP", "EHP", "-O3", "THP + -O3"];

    println!("water_nsquared simulations on Intel_Xeon; speedup over baseline:\n");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "CPU", "THP", "EHP", "-O3", "THP+-O3"
    );
    for cpu in CpuModel::ALL {
        let guest = GuestSpec::new(Workload::WaterNsquared, Scale::SimSmall, cpu, SimMode::Fs);
        let run = profile(&guest, &setups);
        let base = run.hosts[0].seconds();
        print!("{:<8}", cpu.label());
        for i in 1..setups.len() {
            print!(" {:>9.2}%", 100.0 * (base / run.hosts[i].seconds() - 1.0));
        }
        println!();
    }

    println!("\niTLB stall share of cycles, baseline vs THP (O3 model):");
    let guest = GuestSpec::new(
        Workload::WaterNsquared,
        Scale::SimSmall,
        CpuModel::O3,
        SimMode::Fs,
    );
    let run = profile(&guest, &setups);
    for (i, label) in labels.iter().enumerate().take(2) {
        let h = &run.hosts[i];
        println!(
            "  {:<9} iTLB {:>5.2}%  (retiring {:>5.1}%)",
            label,
            h.topdown.pct(h.topdown.fe_latency.itlb),
            h.topdown.level1_pct().0
        );
    }
    println!("\n(paper: huge pages buy up to 5.9%, mostly for detailed CPU models;");
    println!(" THP cuts iTLB overhead ~63%; -O3 averages ~1.4% on the Xeon)");
}
