//! Co-running gem5 processes: how throughput-oriented simulation
//! campaigns behave (the paper's Fig. 1 co-run columns and its SMT
//! on/off observation).
//!
//! ```sh
//! cargo run --release --example corun_scaling
//! ```

use gem5_profiling::prof::experiment::{profile, GuestSpec, HostSetup};
use gem5_profiling::sim::config::{CpuModel, SimMode};
use gem5_profiling::workloads::{Scale, Workload};
use hostmodel::CorunScenario;
use platforms::{intel_xeon, m1_ultra, SystemKnobs};

fn main() {
    let xeon = intel_xeon();
    let ultra = m1_ultra();

    let setups = [
        HostSetup::with_knobs(&xeon, &SystemKnobs::new()),
        HostSetup::with_knobs(
            &xeon,
            &SystemKnobs::new().with_corun(CorunScenario::PerPhysicalCore { procs: 20 }),
        ),
        HostSetup::with_knobs(
            &xeon,
            &SystemKnobs::new().with_corun(CorunScenario::PerHardwareThread { procs: 40 }),
        ),
        HostSetup::with_knobs(&ultra, &SystemKnobs::new()),
        HostSetup::with_knobs(
            &ultra,
            &SystemKnobs::new().with_corun(CorunScenario::PerPhysicalCore { procs: 16 }),
        ),
    ];
    let labels = [
        "Xeon, 1 process",
        "Xeon, 20 procs (SMT off)",
        "Xeon, 40 procs (SMT on)",
        "M1_Ultra, 1 process",
        "M1_Ultra, 16 procs",
    ];

    let guest = GuestSpec::new(Workload::Fmm, Scale::SimSmall, CpuModel::O3, SimMode::Fs);
    let run = profile(&guest, &setups);

    println!("per-process simulation time of fmm (O3, FS), same guest work:\n");
    let base = run.hosts[0].seconds();
    for (label, h) in labels.iter().zip(&run.hosts) {
        println!(
            "  {label:<26} {:>9.4}s  ({:>5.2}x Xeon single)  L1I miss {:>5.1}%",
            h.seconds(),
            h.seconds() / base,
            100.0 * h.l1i_miss_rate
        );
    }

    let smt_off = run.hosts[1].seconds();
    let smt_on = run.hosts[2].seconds();
    println!(
        "\nSMT on -> off per-process speedup: {:.0}%  (paper: ~47%)",
        100.0 * (smt_on / smt_off - 1.0)
    );
    println!("(SMT halves each thread's L1/uop-cache/TLB share — poison for a cache-starved");
    println!(" workload like gem5, so 20 lone processes beat 40 hyperthreaded ones)");
}
