//! Adversarial-client end-to-end tests for the readiness-loop server
//! core: slow-loris header drips, stalled readers that never drain
//! their socket, connection-cap saturation, and streamed progress
//! responses. Every test here would hang or fail on the old
//! thread-per-connection core — a dripping client reset its per-read
//! idle timeout forever and each held connection pinned an OS thread.

#![cfg(unix)]

use gem5prof_served::http::{one_shot, ClientConn};
use gem5prof_served::minjson;
use gem5prof_served::poll;
use gem5prof_served::{serve, ServeConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// Cold-compute budget (CI can be slow); transport-level waits in
/// these tests are intentionally much shorter.
const LONG: Duration = Duration::from_secs(900);

fn parse(body: &str) -> minjson::Json {
    minjson::parse(body).unwrap_or_else(|e| panic!("response is not JSON ({e}): {body}"))
}

#[test]
fn slow_loris_drip_does_not_starve_healthy_clients() {
    // 32 connections drip one header byte every 100 ms and never finish
    // a request. The read deadline is armed when the first partial
    // bytes arrive and is NOT extended by further partial bytes, so
    // each loris dies within ~read_timeout regardless of the drip.
    // Healthy clients keep getting served throughout, because no OS
    // thread is ever parked on a loris socket.
    const LORIS: usize = 32;
    let read_timeout = Duration::from_millis(500);
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        read_timeout,
        deadline: LONG,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    let lifetimes: Vec<Duration> = std::thread::scope(|s| {
        let loris: Vec<_> = (0..LORIS)
            .map(|_| {
                let addr = &addr;
                s.spawn(move || {
                    let mut stream = TcpStream::connect(addr.as_str()).expect("loris connect");
                    stream
                        .set_read_timeout(Some(Duration::from_millis(50)))
                        .unwrap();
                    stream.write_all(b"GET /healthz HT").expect("first bytes");
                    let started = Instant::now();
                    // Drip a header byte at a time until the server
                    // hangs up on us (EOF or reset).
                    let mut scratch = [0u8; 64];
                    loop {
                        assert!(
                            started.elapsed() < Duration::from_secs(15),
                            "loris connection survived a dripping read deadline"
                        );
                        match stream.read(&mut scratch) {
                            Ok(0) => break, // FIN: server gave up on us
                            Ok(_) => panic!("server answered an unfinished request"),
                            Err(e)
                                if e.kind() == std::io::ErrorKind::WouldBlock
                                    || e.kind() == std::io::ErrorKind::TimedOut => {}
                            Err(_) => break, // RST: also a hangup
                        }
                        if stream.write_all(b"x").is_err() {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    started.elapsed()
                })
            })
            .collect();

        // While the drips are in flight, healthy clients must be
        // served promptly — a 2 s transport budget, not the 15 s one.
        for _ in 0..5 {
            let (status, body) = one_shot(&addr, "GET", "/healthz", None, Duration::from_secs(2))
                .expect("healthy client must be served during a loris attack");
            assert_eq!(status, 200);
            assert_eq!(
                parse(&body).get("status").and_then(|v| v.as_str()),
                Some("ok")
            );
            std::thread::sleep(Duration::from_millis(50));
        }

        loris.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Each loris was disconnected close to the read deadline: dripping
    // bytes must not push the deadline out (the old blocking core reset
    // its idle timeout on every byte, keeping the connection — and its
    // thread — alive forever).
    for lifetime in &lifetimes {
        assert!(
            *lifetime < Duration::from_secs(5),
            "loris lived {lifetime:?} despite a {read_timeout:?} read deadline"
        );
    }

    // The attack left no residue: health stays green.
    let (status, body) = one_shot(&addr, "GET", "/healthz", None, Duration::from_secs(5))
        .expect("healthz after the attack");
    assert_eq!(status, 200);
    assert_eq!(
        parse(&body).get("status").and_then(|v| v.as_str()),
        Some("ok")
    );
    handle.shutdown();
}

#[test]
fn stalled_reader_is_disconnected_by_the_write_deadline() {
    // A client pipelines hundreds of /metrics requests and then never
    // reads a byte. The server's kernel send buffer is clamped small,
    // so the flush stalls; with no write progress for `write_timeout`
    // the connection must be torn down instead of buffering forever.
    let write_timeout = Duration::from_millis(400);
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        write_timeout,
        sndbuf: Some(16 * 1024),
        deadline: LONG,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    let mut stream = TcpStream::connect(addr.as_str()).expect("connect");
    // Shrink our receive window so the server backs up after tens of
    // kilobytes instead of megabytes.
    poll::set_rcvbuf(stream.as_raw_fd(), 8 * 1024);
    stream.set_nodelay(true).unwrap();
    let mut pipeline = Vec::new();
    for _ in 0..320 {
        pipeline.extend_from_slice(b"GET /metrics HTTP/1.1\r\nhost: gem5prof\r\n\r\n");
    }
    stream.write_all(&pipeline).expect("pipeline requests");

    // Never read. Probe for the server-side close by writing: once the
    // server resets the connection, a probe write errors out.
    let started = Instant::now();
    loop {
        assert!(
            started.elapsed() < Duration::from_secs(15),
            "stalled reader still connected {:?} after the {write_timeout:?} write deadline",
            started.elapsed()
        );
        if stream.write_all(b"\r\n").is_err() {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "write deadline fired late: {:?}",
        started.elapsed()
    );

    // The stall was contained to that one connection.
    let (status, _) = one_shot(&addr, "GET", "/healthz", None, Duration::from_secs(5))
        .expect("healthy client after a stalled reader");
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn connection_cap_rejects_extras_with_a_canned_503() {
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        max_conns: 4,
        deadline: LONG,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    // Fill the cap with idle connections.
    let held: Vec<TcpStream> = (0..4)
        .map(|_| TcpStream::connect(addr.as_str()).expect("held connect"))
        .collect();
    std::thread::sleep(Duration::from_millis(200));

    // One more gets the canned 503 and a hangup, without sending a
    // single byte of request.
    let mut extra = TcpStream::connect(addr.as_str()).expect("extra connect");
    extra
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reply = String::new();
    extra
        .read_to_string(&mut reply)
        .expect("read canned 503 until close");
    assert!(
        reply.starts_with("HTTP/1.1 503"),
        "expected canned 503, got: {reply}"
    );
    assert!(
        reply.contains("connection limit reached"),
        "503 body must say why: {reply}"
    );
    assert!(
        reply.to_ascii_lowercase().contains("retry-after"),
        "canned 503 must carry Retry-After: {reply}"
    );

    // Release the held slots; the reject shows up on /metrics.
    drop(held);
    std::thread::sleep(Duration::from_millis(200));
    let (status, text) = one_shot(&addr, "GET", "/metrics", None, Duration::from_secs(5))
        .expect("metrics after releasing the cap");
    assert_eq!(status, 200);
    let rejects: f64 = text
        .lines()
        .filter(|l| l.starts_with("gem5prof_core_saturation_rejects_total"))
        .filter_map(|l| l.split_whitespace().last())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum();
    assert!(rejects >= 1.0, "saturation reject not counted:\n{text}");
    assert!(
        text.lines()
            .any(|l| l.starts_with("gem5prof_core_open_connections")),
        "open-connections gauge missing:\n{text}"
    );
    handle.shutdown();
}

#[test]
fn streamed_experiment_emits_progress_then_the_result() {
    // `?stream=progress` answers with a chunked body: newline-delimited
    // progress frames while the worker runs, then the result document
    // as the final frame. An artificial 700 ms of work guarantees at
    // least one 200 ms progress tick lands first.
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        worker_delay: Duration::from_millis(700),
        deadline: LONG,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    // An unknown stream mode is rejected up front, before any compute.
    let (status, body) = one_shot(
        &addr,
        "POST",
        "/experiments?stream=bogus",
        Some(r#"{"platform":"intel_xeon","workload":"dedup","cpu":"o3"}"#),
        Duration::from_secs(5),
    )
    .expect("bad stream mode transport");
    assert_eq!(status, 400, "unknown stream mode must be a 400: {body}");
    assert!(
        body.contains("unknown stream mode"),
        "unhelpful 400: {body}"
    );

    let spec = r#"{"platform":"intel_xeon","workload":"dedup","cpu":"o3"}"#;
    let mut conn = ClientConn::connect(&addr, LONG).expect("connect");
    let (status, stream_body) = conn
        .request("POST", "/experiments?stream=progress", Some(spec))
        .expect("streamed experiment transport");
    assert_eq!(status, 200, "streamed experiment failed: {stream_body}");

    let lines: Vec<&str> = stream_body.lines().filter(|l| !l.is_empty()).collect();
    assert!(
        lines.len() >= 2,
        "expected progress frames before the result: {stream_body}"
    );
    let progress = parse(lines[0])
        .get("progress")
        .cloned()
        .unwrap_or_else(|| panic!("first frame is not a progress frame: {}", lines[0]));
    assert!(
        progress
            .get("elapsed_ms")
            .and_then(|v| v.as_f64())
            .is_some(),
        "progress frame lacks elapsed_ms: {}",
        lines[0]
    );
    let result = parse(lines[lines.len() - 1]);
    let seconds = result
        .get("host")
        .and_then(|h| h.get("seconds"))
        .and_then(|v| v.as_f64())
        .expect("final frame is the experiment result");
    assert!(seconds > 0.0, "host.seconds must be positive: {seconds}");

    // The streamed compute warmed the cache: the identical plain
    // request is now an ordinary (non-chunked) cache hit.
    let (status, body) = conn
        .request("POST", "/experiments", Some(spec))
        .expect("cached repeat transport");
    assert_eq!(status, 200, "cached repeat failed: {body}");
    assert_eq!(
        parse(&body)
            .get("host")
            .and_then(|h| h.get("seconds"))
            .and_then(|v| v.as_f64()),
        Some(seconds),
        "cache hit must return the same result"
    );
    handle.shutdown();
}
