//! Integration test of the paper's checkpoint workflow: fast-forward on
//! the cheap Atomic model, checkpoint, restore into the detailed O3
//! model — including a serialize/deserialize hop, as when the paper moves
//! checkpoints from the Xeon to the M1 machines.

use gem5_profiling::sim::checkpoint::Checkpoint;
use gem5_profiling::sim::config::{CpuModel, SimMode, SystemConfig};
use gem5_profiling::sim::system::System;
use gem5_profiling::workloads::{Scale, Workload};

#[test]
fn boot_atomic_restore_o3_via_bytes() {
    let w = Workload::Dedup;
    // Reference: run straight through on O3.
    let mut reference = System::new(
        SystemConfig::new(CpuModel::O3, SimMode::Se),
        w.program(Scale::Test),
    );
    let ref_result = reference.run();

    // Fast-forward half the run with Atomic.
    let half = ref_result.committed_insts / 2;
    let cfg = SystemConfig::new(CpuModel::Atomic, SimMode::Se).with_max_insts(half);
    let mut ff = System::new(cfg, w.program(Scale::Test));
    ff.run();
    let image = ff.take_checkpoint().to_bytes();
    drop(ff);

    // "Move the checkpoint to another machine" and restore into O3.
    let restored = Checkpoint::from_bytes(&image).expect("valid image");
    let mut o3 = System::from_checkpoint(
        SystemConfig::new(CpuModel::O3, SimMode::Se),
        w.program(Scale::Test),
        &restored,
    );
    let tail = o3.run();

    assert_eq!(tail.stdout, ref_result.stdout);
    assert_eq!(
        restored.insts_before + tail.committed_insts,
        ref_result.committed_insts
    );
    // The detailed portion still produces cache/branch activity.
    assert!(tail.l1i.accesses > 0);
    assert!(tail.bp.is_some());
}

#[test]
fn checkpoints_work_for_every_parsec_kernel() {
    for w in Workload::PARSEC {
        let straight = {
            let mut s = System::new(
                SystemConfig::new(CpuModel::Timing, SimMode::Se),
                w.program(Scale::Test),
            );
            s.run()
        };
        let cut = straight.committed_insts / 3;
        let mut ff = System::new(
            SystemConfig::new(CpuModel::Atomic, SimMode::Se).with_max_insts(cut),
            w.program(Scale::Test),
        );
        ff.run();
        let ckpt = ff.take_checkpoint();
        let mut rest = System::from_checkpoint(
            SystemConfig::new(CpuModel::Timing, SimMode::Se),
            w.program(Scale::Test),
            &ckpt,
        );
        let tail = rest.run();
        assert_eq!(
            ckpt.insts_before + tail.committed_insts,
            straight.committed_insts,
            "{w}: checkpoint must be instruction-exact"
        );
    }
}
