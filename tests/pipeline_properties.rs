//! Property-based integration tests over the full stack.

use gem5_profiling::prof::experiment::{profile, GuestSpec, HostSetup};
use gem5_profiling::sim::config::{CpuModel, SimMode, SystemConfig};
use gem5_profiling::sim::system::System;
use gem5_profiling::workloads::{Scale, Workload};
use gem5sim_isa::asm::ProgramBuilder;
use gem5sim_isa::{AluOp, Reg};
use testkit::{prop_assert, run_cases};

/// All four CPU models execute random straight-line ALU programs to the
/// same architectural result.
#[test]
fn models_agree_on_random_programs() {
    run_cases("models_agree_on_random_programs", 24, |g| {
        let ops = g.vec(3..40, |g| {
            (
                g.u8_in(0..8),
                g.u8_in(0..6),
                g.u8_in(0..6),
                g.i64_in(-64..64),
            )
        });
        let regs = [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5];
        let alu = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Sll,
            AluOp::Srl,
        ];
        let mut b = ProgramBuilder::new();
        for (i, r) in regs.iter().enumerate() {
            b.li(*r, i as i64 * 7 + 1);
        }
        for (op, rd, rs, imm) in &ops {
            b.alui(
                alu[*op as usize],
                regs[*rd as usize],
                regs[*rs as usize],
                *imm,
            );
        }
        b.halt();
        let prog = b.assemble().unwrap();

        let mut results = Vec::new();
        for m in CpuModel::ALL {
            let mut sys = System::new(SystemConfig::new(m, SimMode::Se), prog.clone());
            let r = sys.run();
            results.push((r.committed_insts, r.exit_code));
        }
        prop_assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
        Ok(())
    });
}

/// Top-Down buckets always sum to 100% across arbitrary workload/model
/// combinations.
#[test]
fn topdown_conservation_across_pipeline() {
    for (wl, cpu, mode) in [
        (Workload::Dedup, CpuModel::Atomic, SimMode::Se),
        (Workload::Canneal, CpuModel::Timing, SimMode::Fs),
        (Workload::Fmm, CpuModel::Minor, SimMode::Se),
        (Workload::OceanNcp, CpuModel::O3, SimMode::Fs),
        (Workload::BootExit, CpuModel::O3, SimMode::Fs),
    ] {
        let run = profile(
            &GuestSpec::new(wl, Scale::Test, cpu, mode),
            &[HostSetup::platform(&platforms::intel_xeon())],
        );
        let (r, f, b, be) = run.hosts[0].topdown.level1_pct();
        let sum = r + f + b + be;
        assert!((sum - 100.0).abs() < 1e-6, "{wl} {cpu:?}: sum {sum}");
        for v in [r, f, b, be] {
            assert!((0.0..=100.0).contains(&v));
        }
    }
}

/// Guest timing sanity across workloads: guest IPC stays in a physical
/// range for every model.
#[test]
fn guest_ipc_is_physical() {
    for wl in Workload::PARSEC {
        for cpu in CpuModel::ALL {
            let mut sys = System::new(SystemConfig::new(cpu, SimMode::Se), wl.program(Scale::Test));
            let r = sys.run();
            let ipc = r.guest_ipc();
            let max = match cpu {
                CpuModel::Atomic | CpuModel::Timing => 1.01,
                CpuModel::Minor => 2.01,
                CpuModel::O3 => 8.01,
            };
            assert!(ipc > 0.005 && ipc <= max, "{wl} {cpu:?}: IPC {ipc}");
        }
    }
}

/// The host-seconds metric scales (inversely) with frequency and is
/// invariant to re-running.
#[test]
fn host_seconds_scale_with_frequency() {
    let p = platforms::intel_xeon();
    let half = {
        let mut s = HostSetup::platform(&p);
        s.config = s.config.with_freq(p.config.freq_ghz / 2.0);
        s
    };
    let run = profile(
        &GuestSpec::new(Workload::Sieve, Scale::Test, CpuModel::Timing, SimMode::Se),
        &[HostSetup::platform(&p), half],
    );
    let ratio = run.hosts[1].seconds() / run.hosts[0].seconds();
    assert!(
        (ratio - 2.0).abs() < 1e-9,
        "half frequency = double time, got {ratio}"
    );
}
