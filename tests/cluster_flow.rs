//! End-to-end cluster serving: in-process daemons behind the
//! consistent-hash router, over real TCP.
//!
//! Covers the cluster invariants without chaos (the chaos-armed
//! node-kill episode lives in `bench::soak::cluster_soak_seed`):
//!
//! * key-sharded routing with fleet-wide single-flight — a duplicate
//!   herd across 2 unique keys computes exactly twice on the whole
//!   fleet;
//! * peer warm-tier fetch — a non-owner node serves an owner-cached key
//!   without computing, by promoting it over `POST /peek`;
//! * node kill — the router ejects the dead member and re-routes its
//!   keys to survivors, which still answer everything;
//! * ejection and re-admission — a member that is down at router start
//!   is routed around, then picked up (and handed the peer list) once
//!   it comes up on its advertised address.

use gem5prof_served::cluster::{serve_cluster, ClusterConfig, MemberSpec};
use gem5prof_served::http::one_shot;
use gem5prof_served::minjson::{self, Json};
use gem5prof_served::{serve, ServeConfig, ServerHandle};
use std::net::TcpListener;
use std::time::{Duration, Instant};

const LONG: Duration = Duration::from_secs(900);

fn get(addr: &str, path: &str) -> (u16, String) {
    one_shot(addr, "GET", path, None, LONG).expect("GET transport")
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    one_shot(addr, "POST", path, Some(body), LONG).expect("POST transport")
}

fn parse(body: &str) -> Json {
    minjson::parse(body).unwrap_or_else(|e| panic!("response is not JSON ({e}): {body}"))
}

fn num(doc: &Json, path: &[&str]) -> f64 {
    let mut cur = doc;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing `{key}` in {doc:?}"));
    }
    cur.as_f64()
        .unwrap_or_else(|| panic!("non-number at {path:?}"))
}

fn node(worker_delay: Duration, node_id: &str) -> ServerHandle {
    serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 64,
        cache_cap: 64,
        deadline: LONG,
        worker_delay,
        node_id: Some(node_id.into()),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral node port")
}

fn router_over(addrs: &[String]) -> gem5prof_served::cluster::ClusterHandle {
    serve_cluster(ClusterConfig {
        addr: "127.0.0.1:0".into(),
        members: addrs.iter().map(MemberSpec::new).collect(),
        probe_interval: Duration::from_millis(50),
        connect_timeout: Duration::from_secs(2),
        io_timeout: LONG,
        ..ClusterConfig::default()
    })
    .expect("bind ephemeral router port")
}

fn computes(node_addr: &str) -> f64 {
    let (status, body) = get(node_addr, "/stats");
    assert_eq!(status, 200);
    num(&parse(&body), &["result_cache", "computes"])
}

fn wait_alive(router_addr: &str, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let (status, body) = get(router_addr, "/healthz");
        assert_eq!(status, 200);
        if num(&parse(&body), &["members_alive"]) == want as f64 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "router never reached members_alive={want}: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn cluster_routes_coalesces_and_survives_node_kill() {
    // A visible worker delay so the duplicate herd genuinely overlaps:
    // coalescing (not timing luck) must be what collapses it.
    let mut nodes: Vec<ServerHandle> = (0..3)
        .map(|i| node(Duration::from_millis(50), &format!("flow-node-{i}")))
        .collect();
    let addrs: Vec<String> = nodes.iter().map(|h| h.addr().to_string()).collect();
    let router = router_over(&addrs);
    let router_addr = router.addr().to_string();
    wait_alive(&router_addr, 3);

    // Satellite check while we're here: node /healthz identity fields.
    let (status, body) = get(&addrs[0], "/healthz");
    assert_eq!(status, 200);
    let doc = parse(&body);
    assert_eq!(
        doc.get("node_id").and_then(Json::as_str),
        Some("flow-node-0")
    );
    assert_eq!(
        doc.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(num(&doc, &["uptime_seconds"]) >= 0.0);

    // Duplicate herd: 24 concurrent clients over 2 unique keys, through
    // the router. Every request must succeed...
    std::thread::scope(|scope| {
        for i in 0..24usize {
            let router_addr = router_addr.clone();
            scope.spawn(move || {
                let path = if i % 2 == 0 {
                    "/tables/table1"
                } else {
                    "/tables/table2"
                };
                let (status, body) = get(&router_addr, path);
                assert_eq!(status, 200, "{path} via router: {body}");
                parse(&body);
            });
        }
    });
    // ...and the FLEET must have computed exactly the 2 unique keys:
    // the ring sends all duplicates of a key to one owner, whose
    // single-flight collapses them to one compute.
    let fleet_computes: f64 = addrs.iter().map(|a| computes(a)).sum();
    assert_eq!(
        fleet_computes, 2.0,
        "24 duplicate requests over 2 keys must compute exactly twice fleet-wide"
    );

    // Peer warm-tier fetch: ask a NON-owner node for table1 directly.
    // It must serve 200 by promoting the owner's cached render over
    // /peek — zero additional computes anywhere.
    let non_owner = addrs
        .iter()
        .position(|a| {
            let (s, body) = get(a, "/stats");
            assert_eq!(s, 200);
            let doc = parse(&body);
            num(&doc, &["result_cache", "computes"]) == 0.0
                || num(&doc, &["result_cache", "peer_fetch", "hits"]) >= 0.0
                    && num(&doc, &["result_cache", "computes"]) < 2.0
        })
        .map(|i| addrs[i].clone());
    // With 2 keys on 3 nodes at least one node computed nothing OR at
    // most one key; any such node is a non-owner of some table. Use the
    // zero-compute node if present, else skip the strict zero check.
    if let Some(peer_addr) = non_owner {
        let before = computes(&peer_addr);
        let (status, body) = get(&peer_addr, "/tables/table1");
        assert_eq!(status, 200, "direct non-owner fetch: {body}");
        parse(&body);
        let (_, stats) = get(&peer_addr, "/stats");
        let doc = parse(&stats);
        let after = num(&doc, &["result_cache", "computes"]);
        let peer_hits = num(&doc, &["result_cache", "peer_fetch", "hits"]);
        // Either it already owned table1 (compute count unchanged, served
        // from cache) or it promoted it from the owner (peer hit, no
        // compute). In neither case does it compute anew.
        assert_eq!(after, before, "non-owner recomputed a fleet-cached key");
        if before == 0.0 {
            assert!(
                peer_hits >= 1.0,
                "zero-compute node served table1 without a peer fetch hit: {stats}"
            );
        }
    }

    // Node kill: take down the owner of table1 (the node that computed
    // it). Requests must re-route and still succeed.
    let victim_idx = addrs
        .iter()
        .position(|a| computes(a) >= 1.0)
        .expect("some node computed a table");
    let victim = nodes.remove(victim_idx);
    let victim_addr = addrs[victim_idx].clone();
    victim.shutdown();
    wait_alive(&router_addr, 2);

    for path in ["/tables/table1", "/tables/table2"] {
        let (status, body) = get(&router_addr, path);
        assert_eq!(status, 200, "{path} after node kill: {body}");
        parse(&body);
    }
    // /cluster agrees on who died and has per-member routing counters.
    let (status, body) = get(&router_addr, "/cluster");
    assert_eq!(status, 200);
    let doc = parse(&body);
    let Some(Json::Arr(members)) = doc.get("members").cloned() else {
        panic!("/cluster has no members array: {body}");
    };
    assert_eq!(members.len(), 3);
    let mut routed_total = 0.0;
    for m in &members {
        let addr = m.get("addr").and_then(Json::as_str).unwrap();
        let alive = m.get("alive").and_then(Json::as_bool).unwrap();
        assert_eq!(
            alive,
            addr != victim_addr,
            "liveness wrong for {addr} (victim {victim_addr})"
        );
        routed_total += num(m, &["routed"]);
    }
    assert!(
        routed_total >= 24.0,
        "routed counters lost requests: {body}"
    );

    // Fleet-wide metrics surface the routed/ejection series.
    let (status, text) = get(&router_addr, "/metrics");
    assert_eq!(status, 200);
    for series in [
        "gem5prof_cluster_routed_total",
        "gem5prof_cluster_ejections_total",
        "gem5prof_cluster_members",
        "gem5prof_cluster_peer_fetch_total",
    ] {
        assert!(text.contains(series), "missing {series} in /metrics");
    }

    router.shutdown();
    for n in nodes {
        n.shutdown();
    }
}

#[test]
fn dead_member_is_routed_around_then_readmitted() {
    // Reserve an address for the late member WITHOUT ever connecting to
    // it (avoids TIME_WAIT): bind, read the port, release.
    let late_addr = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("reserve port");
        probe.local_addr().expect("reserved addr").to_string()
    };
    let early = node(Duration::ZERO, "early");
    let early_addr = early.addr().to_string();
    let router = router_over(&[early_addr.clone(), late_addr.clone()]);
    let router_addr = router.addr().to_string();

    // The late member is down: the router must eject it and still
    // answer everything through the survivor.
    wait_alive(&router_addr, 1);
    let (status, body) = get(&router_addr, "/tables/table1");
    assert_eq!(status, 200, "route-around failed: {body}");
    assert_eq!(get(&router_addr, "/tables/table2").0, 200);

    // Bring the late member up on its advertised address. The prober
    // must re-admit it and hand it the peer list.
    let late = serve(ServeConfig {
        addr: late_addr.clone(),
        workers: 2,
        queue_cap: 64,
        cache_cap: 64,
        deadline: LONG,
        node_id: Some("late".into()),
        ..ServeConfig::default()
    })
    .expect("bind the reserved member address");
    wait_alive(&router_addr, 2);

    // Routing now spreads across both members again: with enough unique
    // keys, some land on the re-admitted node. 15 distinct experiment
    // specs = 15 distinct ring keys; with 160 vnodes the chance all 15
    // hash to one of two members is ~2^-15.
    for platform in ["intel_xeon", "m1_pro", "m1_ultra"] {
        for cpu in ["atomic", "timing", "minor", "o3"] {
            let spec = format!(r#"{{"platform":"{platform}","workload":"dedup","cpu":"{cpu}"}}"#);
            let (status, body) = post(&router_addr, "/experiments", &spec);
            assert_eq!(status, 200, "{spec} after readmission: {body}");
        }
        let spec = format!(r#"{{"platform":"{platform}","workload":"sieve","cpu":"atomic"}}"#);
        let (status, body) = post(&router_addr, "/experiments", &spec);
        assert_eq!(status, 200, "{spec} after readmission: {body}");
    }
    let late_routed = {
        let (status, body) = get(&router_addr, "/cluster");
        assert_eq!(status, 200);
        let doc = parse(&body);
        let Some(Json::Arr(members)) = doc.get("members").cloned() else {
            panic!("no members array: {body}");
        };
        members
            .iter()
            .find(|m| m.get("addr").and_then(Json::as_str) == Some(late_addr.as_str()))
            .map(|m| num(m, &["routed"]))
            .expect("late member listed")
    };
    assert!(
        late_routed >= 1.0,
        "re-admitted member never received a request (15 unique keys)"
    );
    // Re-admission pushed the peer list: the late node's engine knows
    // its peers, so an owner-cached key can be served via peer fetch.
    let (status, body) = get(&late_addr, "/tables/table1");
    assert_eq!(status, 200, "late member cannot serve table1: {body}");
    let (_, stats) = get(&late_addr, "/stats");
    let doc = parse(&stats);
    let served_locally = num(&doc, &["result_cache", "peer_fetch", "hits"]) >= 1.0
        || num(&doc, &["result_cache", "computes"]) >= 1.0
        || num(&doc, &["result_cache", "hits"]) >= 1.0;
    assert!(
        served_locally,
        "late member answered table1 from nowhere: {stats}"
    );

    router.shutdown();
    early.shutdown();
    late.shutdown();
}
