//! Golden-output regression suite: every quick-fidelity artifact the
//! `repro` binary can emit — Table I, Table II, Fig. 1 through Fig. 17
//! — rendered in-process and diffed byte-for-byte against the checked-in
//! references under `tests/golden/`.
//!
//! The whole pipeline is deterministic (seeded synthetic traces, fixed
//! host models, order-preserving `parallel_map`), so any byte of drift
//! in these renders is a behavior change in the simulator, the host
//! model, or the table renderer — exactly the regressions a refactor
//! of those layers must not smuggle in. Failures print a per-line diff,
//! not a bytes-differ boolean.
//!
//! To re-bless after an intentional change:
//!
//! ```text
//! GEM5PROF_BLESS=1 cargo test --test golden_repro
//! ```
//!
//! then review the diff of `tests/golden/` like any other code change.

use gem5prof::figures::{self, Fidelity};
use gem5sim::ExecTier;
use std::path::PathBuf;

/// Artifact names, in [`figures::all_figures`] order.
const NAMES: [&str; 19] = [
    "table1", "table2", "fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
    "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn blessing() -> bool {
    std::env::var("GEM5PROF_BLESS").map_or(false, |v| v == "1")
}

/// A readable per-line failure report: the first few diverging lines,
/// each shown as golden vs rendered.
fn diff_report(name: &str, expected: &str, actual: &str) -> String {
    let mut out = format!("`{name}` diverged from tests/golden/{name}.txt:\n");
    let (exp_lines, act_lines): (Vec<_>, Vec<_>) =
        (expected.lines().collect(), actual.lines().collect());
    let mut shown = 0;
    for i in 0..exp_lines.len().max(act_lines.len()) {
        let e = exp_lines.get(i).copied();
        let a = act_lines.get(i).copied();
        if e == a {
            continue;
        }
        out.push_str(&format!(
            "  line {:>3}: golden   {}\n  line {:>3}: rendered {}\n",
            i + 1,
            e.unwrap_or("<missing — golden ends here>"),
            i + 1,
            a.unwrap_or("<missing — render ends here>"),
        ));
        shown += 1;
        if shown == 8 {
            out.push_str("  … (further diverging lines elided)\n");
            break;
        }
    }
    if exp_lines.len() != act_lines.len() {
        out.push_str(&format!(
            "  golden has {} lines, render has {}\n",
            exp_lines.len(),
            act_lines.len()
        ));
    }
    out.push_str("  (intentional change? re-bless with GEM5PROF_BLESS=1 and review the diff)");
    out
}

#[test]
fn quick_artifacts_match_golden_outputs() {
    let tables = figures::all_figures(Fidelity::Quick);
    assert_eq!(
        tables.len(),
        NAMES.len(),
        "artifact list changed — update NAMES and re-bless"
    );
    let dir = golden_dir();
    if blessing() {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
        for (name, table) in NAMES.iter().zip(&tables) {
            std::fs::write(dir.join(format!("{name}.txt")), format!("{table}"))
                .unwrap_or_else(|e| panic!("bless {name}: {e}"));
        }
        eprintln!(
            "blessed {} golden artifacts into {}",
            NAMES.len(),
            dir.display()
        );
        return;
    }
    let mut failures = Vec::new();
    for (name, table) in NAMES.iter().zip(&tables) {
        let rendered = format!("{table}");
        let path = dir.join(format!("{name}.txt"));
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == rendered => {}
            Ok(expected) => failures.push(diff_report(name, &expected, &rendered)),
            Err(e) => failures.push(format!(
                "`{name}`: cannot read {} ({e}) — bless with GEM5PROF_BLESS=1",
                path.display()
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} golden artifacts diverged:\n\n{}",
        failures.len(),
        NAMES.len(),
        failures.join("\n\n")
    );
}

/// Execution-tier matrix: the interp and block tiers must each
/// reproduce all 19 blessed artifacts byte-for-byte. Nothing is
/// regenerated or re-blessed here — the goldens stay exactly as the
/// main test checked them in. The memoization cache is cleared before
/// each leg so the second tier genuinely re-simulates every guest
/// instead of replaying the first leg's cached traces.
#[test]
fn both_exec_tiers_reproduce_golden_artifacts() {
    if blessing() {
        return; // blessing is the main test's job
    }
    let dir = golden_dir();
    let mut failures = Vec::new();
    for tier in [ExecTier::Interp, ExecTier::Block] {
        gem5prof::with_exec_tier(tier, || {
            gem5prof::runner::clear_cache();
            let tables = figures::all_figures(Fidelity::Quick);
            assert_eq!(tables.len(), NAMES.len(), "artifact list changed");
            for (name, table) in NAMES.iter().zip(&tables) {
                let rendered = format!("{table}");
                let tagged = format!("{name} [{} tier]", tier.label());
                let path = dir.join(format!("{name}.txt"));
                match std::fs::read_to_string(&path) {
                    Ok(expected) if expected == rendered => {}
                    Ok(expected) => failures.push(diff_report(&tagged, &expected, &rendered)),
                    Err(e) => failures.push(format!(
                        "`{tagged}`: cannot read {} ({e}) — bless with GEM5PROF_BLESS=1",
                        path.display()
                    )),
                }
            }
        });
    }
    assert!(
        failures.is_empty(),
        "{} golden artifacts diverged across the tier matrix:\n\n{}",
        failures.len(),
        failures.join("\n\n")
    );
}
