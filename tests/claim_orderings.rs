//! Fast paper-claim ordering tests: the directional findings of the
//! paper, checked at the smallest scale so they run in seconds and keep
//! the reproduction honest on every `cargo test`.

use gem5_profiling::prof::experiment::{profile, profile_spec, GuestSpec, HostSetup};
use gem5_profiling::sim::config::{CpuModel, SimMode};
use gem5_profiling::workloads::{Scale, Workload};
use platforms::{firesim, intel_xeon, m1_ultra, SystemKnobs};
use specgen::SpecBenchmark;

/// Fig. 1: the M1 Ultra runs the same gem5 simulation faster than the
/// Xeon server.
#[test]
fn fig01_m1_ultra_outruns_xeon() {
    let hosts = [
        HostSetup::platform(&intel_xeon()),
        HostSetup::platform(&m1_ultra()),
    ];
    let run = profile(
        &GuestSpec::new(
            Workload::WaterNsquared,
            Scale::Test,
            CpuModel::O3,
            SimMode::Fs,
        ),
        &hosts,
    );
    let (xeon, ultra) = (&run.hosts[0], &run.hosts[1]);
    assert!(
        ultra.seconds() < xeon.seconds(),
        "M1_Ultra {}s must beat Xeon {}s",
        ultra.seconds(),
        xeon.seconds()
    );
}

/// Fig. 2: gem5 (O3 model) is far more front-end bound than SPEC's x264.
#[test]
fn fig02_gem5_more_frontend_bound_than_spec_x264() {
    let xeon = [HostSetup::platform(&intel_xeon())];
    let gem5 = profile(
        &GuestSpec::new(
            Workload::WaterNsquared,
            Scale::Test,
            CpuModel::O3,
            SimMode::Fs,
        ),
        &xeon,
    );
    let (_, gem5_fe, _, _) = gem5.hosts[0].topdown.level1_pct();
    let x264 = profile_spec(SpecBenchmark::X264, &xeon, 40_000);
    let (_, x264_fe, _, _) = x264[0].topdown.level1_pct();
    assert!(
        gem5_fe > x264_fe,
        "gem5 FE-bound {gem5_fe}% must exceed x264's {x264_fe}%"
    );
}

/// Fig. 11: transparent huge pages reduce the iTLB overhead.
#[test]
fn fig11_thp_reduces_itlb_overhead() {
    let xeon = intel_xeon();
    let setups = [
        HostSetup::with_knobs(&xeon, &SystemKnobs::new()),
        HostSetup::with_knobs(&xeon, &SystemKnobs::new().with_thp()),
    ];
    let run = profile(
        &GuestSpec::new(
            Workload::WaterNsquared,
            Scale::Test,
            CpuModel::O3,
            SimMode::Fs,
        ),
        &setups,
    );
    let (base, thp) = (&run.hosts[0], &run.hosts[1]);
    assert!(
        thp.topdown.fe_latency.itlb < base.topdown.fe_latency.itlb,
        "THP iTLB cycles {} must undercut base {}",
        thp.topdown.fe_latency.itlb,
        base.topdown.fe_latency.itlb
    );
}

/// Fig. 14: a FireSim host with 64K L1 caches beats the 8K baseline.
#[test]
fn fig14_bigger_host_l1_speeds_up_simulation() {
    let sweep = firesim::fig14_sweep();
    let base_idx = 0;
    assert_eq!(sweep[base_idx].name, "8KB/2:8KB/2:512KB/8");
    let big_idx = sweep
        .iter()
        .position(|c| c.name == "64KB/16:64KB/16:512KB/8")
        .expect("64K point in the sweep");
    let setups: Vec<HostSetup> = sweep.into_iter().map(HostSetup::raw).collect();
    let run = profile(
        &GuestSpec::new(Workload::Sieve, Scale::Test, CpuModel::Atomic, SimMode::Se),
        &setups,
    );
    assert!(
        run.hosts[big_idx].seconds() < run.hosts[base_idx].seconds(),
        "64K L1 host {}s must beat 8K baseline {}s",
        run.hosts[big_idx].seconds(),
        run.hosts[base_idx].seconds()
    );
}
