//! Checksummed differential suite for the guest microbenchmarks and
//! multi-hart co-run scenarios.
//!
//! Every microbenchmark variant deposits a deterministic checksum into
//! guest memory before halting; the host mirrors the computation
//! exactly. That turns each differential leg into a *correctness* test,
//! not just a consistency test: the interp and block tiers must agree
//! with each other **and** with the independently computed expected
//! value, under every CPU model, in SE and FS modes, at 1/2/4 harts,
//! and with per-hart clock dividers in play.

use gem5sim::config::{CpuModel, ExecTier, SimMode, SystemConfig};
use gem5sim::system::{SimResult, System};
use gem5sim::trace::{TraceEntry, Tracer, VecTracer};
use gem5sim_isa::exec::ArchState;
use gem5sim_isa::Program;
use gem5sim_workloads::{corun_program, Microbench, Scale, Workload};
use std::cell::RefCell;
use std::rc::Rc;
use testkit::{prop_assert, prop_assert_eq, run_cases, Gen};

/// Everything observable about one simulation run.
struct TierRun {
    result: SimResult,
    trace: Vec<TraceEntry>,
    arch: Vec<ArchState>,
    mem_checksum: u64,
}

fn run_tier(prog: &Program, cfg: SystemConfig) -> TierRun {
    let tracer = Rc::new(RefCell::new(VecTracer::default()));
    let num_cpus = cfg.num_cpus;
    let mut sys = System::new(cfg, prog.clone());
    sys.set_tracer(Tracer::new(tracer.clone()));
    let result = sys.run();
    let arch = (0..num_cpus).map(|i| sys.arch_state(i)).collect();
    let mem_checksum = sys.mem_checksum();
    drop(sys);
    TierRun {
        result,
        trace: Rc::try_unwrap(tracer).unwrap().into_inner().entries,
        arch,
        mem_checksum,
    }
}

/// Runs `prog` under both tiers, asserts byte identity of every
/// observable, and returns the (shared) result for checksum checks.
fn assert_tiers_match(prog: &Program, cfg: SystemConfig, label: &str) -> SimResult {
    let interp = run_tier(prog, cfg.clone().with_exec_tier(ExecTier::Interp));
    let block = run_tier(prog, cfg.with_exec_tier(ExecTier::Block));
    assert_eq!(
        interp.result, block.result,
        "{label}: SimResult diverged between tiers"
    );
    assert_eq!(
        interp.trace, block.trace,
        "{label}: instruction traces diverged between tiers"
    );
    assert_eq!(
        interp.arch, block.arch,
        "{label}: final register state diverged between tiers"
    );
    assert_eq!(
        interp.mem_checksum, block.mem_checksum,
        "{label}: final memory images diverged between tiers"
    );
    interp.result
}

/// Shared-L2 accounting: every L2 access is an L1 miss or an L1 dirty
/// victim writeback — per run, whatever the hart count or CPU model.
fn assert_l2_balances(r: &SimResult, label: &str) {
    assert_eq!(
        r.l2.accesses,
        r.l1i.misses + r.l1d.misses + r.l1i.writebacks + r.l1d.writebacks,
        "{label}: L2 accesses must balance against per-hart L1 misses + writebacks"
    );
}

/// Every variant × (Atomic, Timing) × (SE, FS) × (interp, block):
/// identical stats/traces *and* the expected guest checksum. The FS
/// legs crank the timer to 1 µs so interrupts land inside the kernels.
#[test]
fn every_variant_matches_across_tiers_with_expected_checksum() {
    for m in Microbench::ALL {
        let prog = Workload::Micro(m).program(Scale::Test);
        let expected = m.expected_checksum(Scale::Test);
        for model in [CpuModel::Atomic, CpuModel::Timing] {
            for mode in [SimMode::Se, SimMode::Fs] {
                let mut cfg = SystemConfig::new(model, mode);
                if mode == SimMode::Fs {
                    cfg.timer_interval_us = 1;
                }
                let label = format!("{m}/{model:?}/{mode:?}");
                let r = assert_tiers_match(&prog, cfg, &label);
                assert_eq!(
                    r.guest_checksums,
                    vec![expected],
                    "{label}: wrong guest checksum"
                );
                assert_l2_balances(&r, &label);
            }
        }
    }
}

/// The detailed models don't implement the block tier but must still
/// produce the expected checksum for every variant.
#[test]
fn detailed_models_deposit_expected_checksums() {
    for m in Microbench::ALL {
        let prog = Workload::Micro(m).program(Scale::Test);
        let expected = m.expected_checksum(Scale::Test);
        for model in [CpuModel::Minor, CpuModel::O3] {
            let mut sys = System::new(SystemConfig::new(model, SimMode::Se), prog.clone());
            let r = sys.run();
            assert_eq!(
                r.guest_checksums,
                vec![expected],
                "{m}/{model:?}: wrong guest checksum"
            );
            assert_l2_balances(&r, &format!("{m}/{model:?}"));
        }
    }
}

/// Multi-hart co-runs: even harts run one variant, odd harts another;
/// each hart's checksum slot must hold its own variant's expected value,
/// identically across tiers, at 2 and 4 harts.
#[test]
fn corun_harts_match_across_tiers_with_parity_checksums() {
    let pairs = [
        (Microbench::MemStride, Microbench::Alu),
        (Microbench::Alu, Microbench::BranchPred),
    ];
    for (a, b) in pairs {
        let prog = corun_program(a, b, Scale::Test);
        for harts in [2usize, 4] {
            for model in [CpuModel::Atomic, CpuModel::Timing] {
                let cfg = SystemConfig::new(model, SimMode::Se).with_cpus(harts);
                let label = format!("{a}+{b} x{harts}/{model:?}");
                let r = assert_tiers_match(&prog, cfg, &label);
                let expected: Vec<u64> = (0..harts)
                    .map(|i| {
                        let v = if i % 2 == 0 { a } else { b };
                        v.expected_checksum(Scale::Test)
                    })
                    .collect();
                assert_eq!(r.guest_checksums, expected, "{label}: checksum parity");
                assert_l2_balances(&r, &label);
            }
        }
    }
}

/// Per-hart clock dividers slow the divided harts' guest time but must
/// not change what any hart computes — and the tiers must still agree.
#[test]
fn clock_dividers_stretch_time_but_not_results() {
    // A symmetric pair: with both harts running the same kernel, the
    // divided hart finishes last, so the divider must show up in the
    // end-of-simulation tick (an asymmetric pair could hide it behind
    // the slower undivided hart).
    let (a, b) = (Microbench::Alu, Microbench::Alu);
    let prog = corun_program(a, b, Scale::Test);
    let base_cfg = SystemConfig::new(CpuModel::Timing, SimMode::Se).with_cpus(2);
    let undivided = assert_tiers_match(&prog, base_cfg.clone(), "alu+alu x2");
    let divided = assert_tiers_match(
        &prog,
        base_cfg.with_hart_clock_divs(vec![1, 2]),
        "alu+alu x2 div2",
    );
    assert_eq!(
        undivided.guest_checksums, divided.guest_checksums,
        "dividers must not change guest computation"
    );
    assert!(
        divided.sim_ticks > undivided.sim_ticks,
        "halving hart 1's clock must stretch guest time ({} vs {})",
        divided.sim_ticks,
        undivided.sim_ticks
    );
    assert_eq!(
        undivided.committed_insts, divided.committed_insts,
        "dividers must not change the instruction stream"
    );
}

/// The co-run scaling figure fans (pair × harts) across the worker
/// pool; its rendered output must be byte-identical at any thread count
/// (the second build replays memoized guest traces, so this also pins
/// replay determinism at the figure level).
#[test]
fn corun_figure_is_byte_identical_across_thread_counts() {
    use gem5_profiling::prof::figures::{fig17, Fidelity};
    use gem5_profiling::prof::with_threads;
    let parallel = with_threads(4, || fig17(Fidelity::Quick).to_string());
    let single = with_threads(1, || fig17(Fidelity::Quick).to_string());
    assert_eq!(parallel, single, "fig17 diverged between 4 and 1 threads");
}

/// A memoized multi-hart co-run profile replays identically: the second
/// `profile()` of the same spec reproduces guest stats, per-hart
/// checksums and host profiles exactly from the recorded trace.
#[test]
fn corun_profiles_replay_identically_from_memoized_traces() {
    use gem5_profiling::prof::experiment::{profile, GuestSpec, HostSetup};
    let hosts = [HostSetup::platform(&platforms::intel_xeon())];
    let spec = GuestSpec::new(
        Workload::Micro(Microbench::MemStride),
        Scale::Test,
        CpuModel::Timing,
        SimMode::Se,
    )
    .with_harts(4)
    .with_corun(Microbench::Alu)
    .with_corun_div(2);
    let first = profile(&spec, &hosts);
    let second = profile(&spec, &hosts);
    assert_eq!(first.guest, second.guest, "replayed guest stats diverged");
    assert_eq!(first.hosts, second.hosts, "replayed host profiles diverged");
    assert_eq!(
        first.profile, second.profile,
        "replayed call profile diverged"
    );
    let expected: Vec<u64> = (0..4)
        .map(|i| {
            let v = if i % 2 == 0 {
                Microbench::MemStride
            } else {
                Microbench::Alu
            };
            v.expected_checksum(Scale::Test)
        })
        .collect();
    assert_eq!(first.guest.guest_checksums, expected);
}

/// Seeded random co-run configurations: variant pair, hart count, CPU
/// model, SE/FS, dividers and block-cache capacity all fuzzed. Tiers
/// must agree and every hart must deposit its variant's checksum.
#[test]
fn fuzzed_corun_configs_match_across_tiers() {
    run_cases("microbench_corun_fuzz", 24, |g| {
        let a = *g.pick(&Microbench::ALL);
        let b = *g.pick(&Microbench::ALL);
        let harts = *g.pick(&[1usize, 2, 3, 4]);
        let model = if g.bool() {
            CpuModel::Atomic
        } else {
            CpuModel::Timing
        };
        let mode = if g.bool() { SimMode::Se } else { SimMode::Fs };
        let mut cfg = SystemConfig::new(model, mode).with_cpus(harts);
        if mode == SimMode::Fs {
            cfg.timer_interval_us = 1;
        }
        if g.bool() {
            cfg = cfg.with_hart_clock_divs((0..harts).map(|_| g.u64_in(1..4)).collect());
        }
        if g.bool() {
            cfg = cfg.with_block_cache_blocks(g.usize_in(1..4));
        }
        let prog = corun_program(a, b, Scale::Test);
        let interp = run_tier(&prog, cfg.clone().with_exec_tier(ExecTier::Interp));
        let block = run_tier(&prog, cfg.with_exec_tier(ExecTier::Block));
        prop_assert_eq!(&interp.result, &block.result, "SimResult diverged");
        prop_assert!(interp.trace == block.trace, "traces diverged");
        prop_assert_eq!(&interp.arch, &block.arch, "register state diverged");
        prop_assert_eq!(
            interp.mem_checksum,
            block.mem_checksum,
            "memory images diverged"
        );
        for i in 0..harts {
            let v = if i % 2 == 0 { a } else { b };
            prop_assert_eq!(
                interp.result.guest_checksums[i],
                v.expected_checksum(Scale::Test),
                "hart checksum wrong"
            );
        }
        Ok(())
    });
}
