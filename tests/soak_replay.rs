//! A failing soak seed must be replayable: with one client and a fixed
//! request count, the same seed must produce the same traffic outcome
//! and the same per-point injection schedule, run to run. This is the
//! regression test for the chaos determinism contract — if it breaks,
//! the one-line repro the `soak` binary prints stops reproducing.

use bench::soak::{soak_seed, SoakConfig};

#[test]
fn same_seed_replays_the_same_soak_episode() {
    // Pre-warm the guest-trace cache so both runs see the same compute
    // timings (milliseconds, far under the soak deadline): without
    // this, a cold first run could 504 where the warm second run
    // answers 200, which would be a timing artifact, not a
    // determinism bug.
    for cpu in [
        gem5sim::config::CpuModel::Atomic,
        gem5sim::config::CpuModel::Timing,
        gem5sim::config::CpuModel::Minor,
    ] {
        let spec = gem5prof::spec::ExperimentSpec {
            platform: platforms::PlatformId::IntelXeon,
            workload: gem5sim_workloads::Workload::Dedup,
            scale: gem5sim_workloads::Scale::Test,
            cpu,
            mode: gem5sim::config::SimMode::Se,
            knobs: platforms::SystemKnobs::new(),
            harts: 1,
            corun: None,
            corun_div: 1,
        };
        spec.run();
    }

    let cfg = SoakConfig {
        requests: 36,
        clients: 1,
        prob: 0.15,
        secs: 0.0, // unused in fixed-request mode
    };
    let first = soak_seed(42, &cfg);
    let second = soak_seed(42, &cfg);

    assert!(
        first.passed(),
        "seed 42 violated invariants: {:?}",
        first.violations
    );
    assert!(
        second.passed(),
        "seed 42 violated invariants on replay: {:?}",
        second.violations
    );

    // The client-visible episode is identical…
    assert_eq!(first.issued, second.issued);
    assert_eq!(first.completed, second.completed, "completed diverged");
    assert_eq!(first.dropped, second.dropped, "dropped diverged");
    assert_eq!(first.retries, second.retries, "retries diverged");
    assert_eq!(first.statuses, second.statuses, "status histogram diverged");
    assert!(
        first.injected() > 0,
        "a soak that injects nothing proves nothing"
    );

    // …and so is the injection schedule. `runner.queue_stall` is
    // excluded: its visit count depends on how often idle runner
    // threads poll the work queue, which thread scheduling decides.
    let schedule = |out: &bench::soak::SeedOutcome| -> Vec<(&'static str, u64, u64)> {
        out.points
            .iter()
            .filter(|p| p.point != "runner.queue_stall")
            .map(|p| (p.point, p.hits, p.injected))
            .collect()
    };
    assert_eq!(
        schedule(&first),
        schedule(&second),
        "per-point injection schedule diverged for the same seed"
    );
}
