//! End-to-end integration tests asserting the paper's headline claims
//! hold across the full pipeline (guest simulator → trace → host model →
//! figures), at Quick fidelity.

use gem5_profiling::prof::experiment::{profile, GuestSpec, HostSetup};
use gem5_profiling::prof::figures::{self, Fidelity};
use gem5_profiling::sim::config::{CpuModel, SimMode};
use gem5_profiling::workloads::{Scale, Workload};

/// Claim 1 (abstract): gem5's performance is extremely sensitive to L1
/// cache size — growing the host's L1s from 8 KB to 32 KB speeds
/// simulation by tens of percent.
#[test]
fn claim_l1_sensitivity() {
    let t = figures::fig14(Fidelity::Quick);
    // Paper: 31-61% for 32 KB L1s. Our Timing model lands somewhat below
    // that band (see EXPERIMENTS.md), so the gate is a double-digit
    // speedup for every model.
    for cpu in ["ATOMIC", "TIMING", "O3"] {
        let s32 = t.get("32KB/8:32KB/8:512KB/8", cpu).unwrap();
        assert!(
            s32 > 15.0,
            "{cpu}: 32KB L1s must give a large speedup, got {s32:.1}%"
        );
    }
}

/// Claim 2 (Sec. IV-A): gem5 is extremely front-end bound, worse than
/// hyperscale workloads (15-30%), with front-end share growing with
/// CPU-model detail.
#[test]
fn claim_front_end_bound() {
    let t = figures::fig02(Fidelity::Quick);
    let fe = |label: &str| t.get(label, "FrontEnd").unwrap();
    for label in [
        "ATOMIC_PARSEC",
        "TIMING_PARSEC",
        "MINOR_PARSEC",
        "O3_PARSEC",
    ] {
        assert!(
            fe(label) > 20.0,
            "{label}: front-end bound {:.1}% too low",
            fe(label)
        );
    }
    assert!(
        fe("O3_PARSEC") > fe("ATOMIC_PARSEC"),
        "detail increases front-end pressure"
    );
    // Back-end stays small for gem5 (paper: 0.9-11.3%). At Quick
    // fidelity the short run leaves compulsory heap misses unamortized,
    // so the gate is loose; `repro fig2` at Paper fidelity lands in the
    // paper's band (see EXPERIMENTS.md).
    for label in ["ATOMIC_PARSEC", "O3_PARSEC"] {
        let be = t.get(label, "BackEnd").unwrap();
        assert!(be < 25.0, "{label}: backend {be:.1}%");
    }
}

/// Claim 3 (Sec. II / Fig. 1): the M1 platforms complete the same
/// simulation substantially faster than the Xeon server.
#[test]
fn claim_m1_speed_advantage() {
    let setups = [
        HostSetup::platform(&platforms::intel_xeon()),
        HostSetup::platform(&platforms::m1_pro()),
        HostSetup::platform(&platforms::m1_ultra()),
    ];
    for wl in [Workload::WaterNsquared, Workload::Dedup] {
        let run = profile(
            &GuestSpec::new(wl, Scale::Test, CpuModel::O3, SimMode::Fs),
            &setups,
        );
        let xeon = run.hosts[0].seconds();
        for m1 in &run.hosts[1..] {
            let ratio = xeon / m1.seconds();
            assert!(
                ratio > 1.3 && ratio < 5.0,
                "{wl}: {} speedup {ratio:.2}x outside the paper's 1.7-4.15x ballpark",
                m1.name
            );
        }
    }
}

/// Claim 4 (conclusion): the bottlenecks are high iCache/iTLB misses,
/// high branch resteer overheads, and extremely low µop-cache
/// utilization.
#[test]
fn claim_bottleneck_identification() {
    let xeon = [HostSetup::platform(&platforms::intel_xeon())];
    let run = profile(
        &GuestSpec::new(
            Workload::WaterNsquared,
            Scale::Test,
            CpuModel::O3,
            SimMode::Fs,
        ),
        &xeon,
    );
    let h = &run.hosts[0];
    let td = &h.topdown;
    assert!(td.pct(td.fe_latency.icache) > 4.0, "iCache stalls present");
    assert!(td.pct(td.fe_latency.itlb) > 1.0, "iTLB stalls present");
    assert!(
        td.pct(td.fe_latency.unknown_branches) > 4.0,
        "branch resteer (unknown branches) overhead present"
    );
    assert!(h.dsb_coverage < 0.35, "uop cache utilization is low");
}

/// Claim 5 (Sec. V-A): huge pages and -O3 give single-digit speedups;
/// frequency scales time linearly.
#[test]
fn claim_system_tuning() {
    let t10 = figures::fig10(Fidelity::Quick);
    let thp_o3 = t10.get("O3", "THP").unwrap();
    assert!(thp_o3 > 0.5 && thp_o3 < 25.0, "THP speedup {thp_o3:.1}%");

    let t13 = figures::fig13(Fidelity::Quick);
    let slow = t13.get("1.2GHz", "Atomic").unwrap();
    assert!((slow - 2.58).abs() < 0.1, "3.1/1.2 = 2.58x, got {slow:.2}");
}

/// Claim 6 (Fig. 15): no killer function; the CDF flattens and the
/// function count rises with CPU detail.
#[test]
fn claim_no_killer_function() {
    let t = figures::fig15(Fidelity::Quick);
    for row in &t.rows {
        let hottest = t.get(&row.label, "Hottest%").unwrap();
        assert!(
            hottest < 20.0,
            "{}: hottest function {hottest:.1}% — no killer function expected",
            row.label
        );
    }
    let funcs = t.column("FunctionsTouched").unwrap();
    assert!(funcs.windows(2).all(|w| w[0] < w[1]), "{funcs:?}");
    assert!(funcs[3] > 1.5 * funcs[0], "O3 touches far more functions");
}

/// Cross-check: the guest simulator itself is deterministic, so figure
/// regeneration is reproducible.
#[test]
fn figures_are_deterministic() {
    let a = figures::fig06(Fidelity::Quick);
    let b = figures::fig06(Fidelity::Quick);
    assert_eq!(a, b);
}
