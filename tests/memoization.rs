//! The guest-trace memoization contract: the first profile of a
//! `GuestSpec` simulates the guest; every later profile of the same spec
//! replays the recorded stream and performs **zero** guest simulation.
//!
//! "Zero simulation" is asserted through the event-queue layer itself:
//! every serviced simulator event bumps a process-wide counter
//! (`gem5sim_event::global_events_serviced`), so a replayed profile must
//! leave it untouched.
//!
//! This lives in its own integration-test binary (single `#[test]`) so
//! no concurrently running test can perturb the process-wide counters.

use gem5_profiling::prof::experiment::{profile, GuestSpec, HostSetup};
use gem5_profiling::prof::runner::cache_stats;
use gem5_profiling::sim::config::{CpuModel, SimMode};
use gem5_profiling::workloads::{Scale, Workload};
use gem5sim_event::global_events_serviced;
use platforms::{intel_xeon, m1_pro};

#[test]
fn second_profile_of_same_spec_runs_zero_guest_simulation() {
    let hosts = [
        HostSetup::platform(&intel_xeon()),
        HostSetup::platform(&m1_pro()),
    ];
    let spec = GuestSpec::new(Workload::Fmm, Scale::Test, CpuModel::Timing, SimMode::Se);

    // Cold: must simulate (events are serviced, a miss is recorded).
    let stats0 = cache_stats();
    let events0 = global_events_serviced();
    let first = profile(&spec, &hosts);
    let stats1 = cache_stats();
    let events1 = global_events_serviced();
    assert!(events1 > events0, "cold profile must service guest events");
    assert_eq!(stats1.misses, stats0.misses + 1);
    assert_eq!(stats1.hits, stats0.hits);
    assert!(
        stats1.resident_events > stats0.resident_events,
        "the cold run's stream must now be cached"
    );

    // Warm: same spec, different call — zero guest simulation.
    let second = profile(&spec, &hosts);
    let stats2 = cache_stats();
    let events2 = global_events_serviced();
    assert_eq!(
        events2, events1,
        "a cached profile must not service a single simulator event"
    );
    assert_eq!(stats2.hits, stats1.hits + 1);
    assert_eq!(stats2.misses, stats1.misses);

    // And the replay is indistinguishable from the live run.
    assert_eq!(first.guest, second.guest);
    assert_eq!(first.hosts, second.hosts);
    assert_eq!(first.profile, second.profile);

    // A different spec is a fresh miss: the guest simulator runs again.
    let other = GuestSpec::new(
        Workload::Canneal,
        Scale::Test,
        CpuModel::Timing,
        SimMode::Se,
    );
    let _ = profile(&other, &hosts);
    let stats3 = cache_stats();
    let events3 = global_events_serviced();
    assert!(events3 > events2, "a distinct spec must simulate");
    assert_eq!(stats3.misses, stats2.misses + 1);
}
