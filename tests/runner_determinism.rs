//! The parallel runner's determinism contract: a figure built on N
//! threads is byte-identical to the same figure built on 1 thread.
//!
//! The comparison is on the rendered `Table` (its `Display` output —
//! exactly what `repro` prints), so any divergence in row order, value
//! or formatting fails the test.

use gem5_profiling::prof::figures::{fig01, fig14, Fidelity};
use gem5_profiling::prof::{threads, with_threads};

#[test]
fn fig01_is_byte_identical_across_thread_counts() {
    let parallel = with_threads(4, || fig01(Fidelity::Quick).to_string());
    let single = with_threads(1, || fig01(Fidelity::Quick).to_string());
    assert_eq!(parallel, single, "fig01 diverged between 4 and 1 threads");
}

#[test]
fn fig14_is_byte_identical_across_thread_counts() {
    let parallel = with_threads(4, || fig14(Fidelity::Quick).to_string());
    let single = with_threads(1, || fig14(Fidelity::Quick).to_string());
    assert_eq!(parallel, single, "fig14 diverged between 4 and 1 threads");
}

#[test]
fn threads_zero_falls_back_to_available_parallelism() {
    // `GEM5PROF_THREADS=0` (and `set_threads(0)`, which `with_threads(0, …)`
    // pins here) means "auto", not "zero workers". The other tests in this
    // file are immune to the env var: they pin a non-zero override, which
    // takes precedence.
    std::env::set_var("GEM5PROF_THREADS", "0");
    let resolved = with_threads(0, threads);
    std::env::remove_var("GEM5PROF_THREADS");
    let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
    assert_eq!(
        resolved, auto,
        "GEM5PROF_THREADS=0 must fall back to available parallelism"
    );
    assert!(resolved >= 1);
}

#[test]
fn garbage_thread_env_is_ignored() {
    std::env::set_var("GEM5PROF_THREADS", "lots");
    let resolved = with_threads(0, threads);
    std::env::remove_var("GEM5PROF_THREADS");
    assert!(resolved >= 1, "unparseable env var must not zero the pool");
}
