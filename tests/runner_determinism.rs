//! The parallel runner's determinism contract: a figure built on N
//! threads is byte-identical to the same figure built on 1 thread.
//!
//! The comparison is on the rendered `Table` (its `Display` output —
//! exactly what `repro` prints), so any divergence in row order, value
//! or formatting fails the test.

use gem5_profiling::prof::figures::{fig01, fig14, Fidelity};
use gem5_profiling::prof::with_threads;

#[test]
fn fig01_is_byte_identical_across_thread_counts() {
    let parallel = with_threads(4, || fig01(Fidelity::Quick).to_string());
    let single = with_threads(1, || fig01(Fidelity::Quick).to_string());
    assert_eq!(parallel, single, "fig01 diverged between 4 and 1 threads");
}

#[test]
fn fig14_is_byte_identical_across_thread_counts() {
    let parallel = with_threads(4, || fig14(Fidelity::Quick).to_string());
    let single = with_threads(1, || fig14(Fidelity::Quick).to_string());
    assert_eq!(parallel, single, "fig14 diverged between 4 and 1 threads");
}
