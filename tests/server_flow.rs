//! End-to-end flow through `gem5prof-served`: boot the daemon on an
//! ephemeral port, exercise every endpoint class over real TCP, check
//! the result cache via `/stats`, drive the queue into backpressure,
//! and shut down gracefully.

use gem5prof_served::http::one_shot;
use gem5prof_served::minjson;
use gem5prof_served::{serve, ServeConfig};
use std::time::Duration;

/// Generous transport/deadline budget: the cold `/figures/fig01` render
/// simulates every workload × CPU point on however many cores CI has.
const LONG: Duration = Duration::from_secs(900);

fn get(addr: &str, path: &str) -> (u16, String) {
    one_shot(addr, "GET", path, None, LONG).expect("GET transport")
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    one_shot(addr, "POST", path, Some(body), LONG).expect("POST transport")
}

fn parse(body: &str) -> minjson::Json {
    minjson::parse(body).unwrap_or_else(|e| panic!("response is not JSON ({e}): {body}"))
}

#[test]
fn server_flow_end_to_end() {
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 32,
        cache_cap: 64,
        deadline: LONG,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    // Liveness.
    let (status, body) = get(&addr, "/healthz");
    assert_eq!(status, 200);
    let doc = parse(&body);
    assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ok"));
    assert_eq!(doc.get("draining").and_then(|v| v.as_bool()), Some(false));

    // Unknown paths and wrong methods.
    assert_eq!(get(&addr, "/nope").0, 404);
    assert_eq!(get(&addr, "/figures/fig99").0, 404);
    assert_eq!(get(&addr, "/experiments").0, 405);

    // Invalid experiment bodies: malformed JSON, then an unknown workload.
    assert_eq!(post(&addr, "/experiments", "{not json").0, 400);
    let bad_spec = r#"{"platform":"intel_xeon","workload":"not_a_workload","cpu":"o3"}"#;
    assert_eq!(post(&addr, "/experiments", bad_spec).0, 400);

    // An unknown field is a 400 that names the offending key, so a
    // typo'd co-run axis can never silently run the default instead.
    let typo = r#"{"workload":"alu","hartz":4}"#;
    let (status, body) = post(&addr, "/experiments", typo);
    assert_eq!(status, 400, "typo'd spec field must be rejected: {body}");
    assert!(
        body.contains("`hartz`"),
        "400 body must name the offending key: {body}"
    );

    // A multi-hart co-run microbenchmark experiment: the response must
    // carry per-hart guest checksums and a guest-MIPS rate.
    let corun = r#"{"platform":"intel_xeon","workload":"mem_stride","cpu":"timing","harts":2,"corun":"alu"}"#;
    let (status, body) = post(&addr, "/experiments", corun);
    assert_eq!(status, 200, "co-run experiment failed: {body}");
    let doc = parse(&body);
    let guest = doc.get("guest").expect("guest section in response");
    let checksums = guest
        .get("checksums")
        .and_then(|v| v.as_arr())
        .expect("guest.checksums array");
    assert_eq!(checksums.len(), 2, "one checksum per hart");
    let mips = guest
        .get("guest_mips")
        .and_then(|v| v.as_f64())
        .expect("guest.guest_mips in response");
    assert!(mips > 0.0, "guest MIPS must be positive, got {mips}");

    // A real parameterized experiment.
    let spec = r#"{"platform":"intel_xeon","workload":"dedup","cpu":"o3"}"#;
    let (status, body) = post(&addr, "/experiments", spec);
    assert_eq!(status, 200, "experiment failed: {body}");
    let doc = parse(&body);
    let seconds = doc
        .get("host")
        .and_then(|h| h.get("seconds"))
        .and_then(|v| v.as_f64())
        .expect("host.seconds in experiment response");
    assert!(
        seconds > 0.0,
        "host.seconds must be positive, got {seconds}"
    );

    // The identical spec again must be served from the result cache.
    assert_eq!(post(&addr, "/experiments", spec).0, 200);
    let (_, stats) = get(&addr, "/stats");
    let stats = parse(&stats);
    let hits = stats
        .get("result_cache")
        .and_then(|c| c.get("hits"))
        .and_then(|v| v.as_u64())
        .expect("result_cache.hits in /stats");
    assert!(
        hits >= 1,
        "second identical experiment should hit the cache: {}",
        stats.to_string_compact()
    );

    // Unknown query parameters on /figures/* are a 400 naming the key.
    let (status, body) = get(&addr, "/figures/fig01?fidelty=paper");
    assert_eq!(status, 400, "typo'd query key must be rejected: {body}");
    assert!(
        body.contains("`fidelty`"),
        "400 body must name the offending key: {body}"
    );

    // A figure renders, parses, and the repeat is the cached bytes.
    let (status, body) = get(&addr, "/figures/fig01");
    assert_eq!(status, 200, "fig01 failed: {body}");
    let fig = parse(&body);
    let title = fig
        .get("title")
        .and_then(|v| v.as_str())
        .expect("figure title");
    assert!(title.contains("Fig. 1"), "unexpected title: {title}");
    let (status, body_again) = get(&addr, "/figures/fig01");
    assert_eq!(status, 200);
    assert_eq!(body, body_again, "cached figure must be byte-identical");
    assert_eq!(get(&addr, "/tables/table2").0, 200);

    // /metrics: valid Prometheus exposition fed by the same counters
    // /stats reads, including request-path histograms and cache series.
    let (status, text) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        text.contains("# TYPE gem5prof_served_requests_total counter"),
        "missing request counter TYPE line:\n{text}"
    );
    assert!(
        text.lines()
            .any(|l| l.starts_with("gem5prof_served_responses_total{status=\"200\"}")),
        "missing status-labeled response series:\n{text}"
    );
    assert!(text.contains("# TYPE served_compute_seconds histogram"));
    assert!(text.contains("served_compute_seconds_bucket{le=\"+Inf\"}"));
    assert!(text.contains("served_compute_seconds_count"));
    assert!(text.contains("served_queue_wait_seconds_sum"));
    assert!(text
        .lines()
        .any(|l| l.starts_with("gem5prof_result_cache_hits_total")));
    assert!(text
        .lines()
        .any(|l| l.starts_with("gem5prof_trace_cache_hits_total")));
    // One source of truth: the result-cache hit count /metrics reports
    // matches what /stats reported a moment ago (both only grow).
    let metrics_hits = text
        .lines()
        .find(|l| l.starts_with("gem5prof_result_cache_hits_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse::<f64>().ok())
        .expect("parse result-cache hit count from /metrics");
    assert!(
        metrics_hits >= hits as f64,
        "/metrics hits {metrics_hits} < /stats hits {hits}"
    );

    // /profile: span tree with self/total times covering the requests
    // this test just made.
    let (status, body) = get(&addr, "/profile");
    assert_eq!(status, 200);
    let prof = parse(&body);
    let spans = prof
        .get("spans")
        .and_then(|s| s.as_arr())
        .expect("/profile spans array");
    let compute = spans
        .iter()
        .find(|s| {
            s.get("path")
                .and_then(|p| p.as_arr())
                .is_some_and(|p| p.iter().any(|seg| seg.as_str() == Some("serve_compute")))
        })
        .expect("serve_compute span must appear after compute requests");
    let total = compute.get("total_ns").and_then(|v| v.as_f64()).unwrap();
    let own = compute.get("self_ns").and_then(|v| v.as_f64()).unwrap();
    assert!(total > 0.0 && own <= total, "total={total} self={own}");
    assert!(
        prof.get("collapsed").and_then(|v| v.as_str()).is_some(),
        "collapsed-stack export missing"
    );

    // Wrong methods on the observability endpoints are 405, not 404.
    assert_eq!(post(&addr, "/metrics", "").0, 405);
    assert_eq!(post(&addr, "/profile", "").0, 405);

    // Graceful shutdown: the daemon drains and stops listening.
    handle.shutdown();
    assert!(
        one_shot(&addr, "GET", "/healthz", None, Duration::from_secs(5)).is_err(),
        "daemon still reachable after shutdown"
    );
}

#[test]
fn queue_full_answers_429_never_hangs() {
    // One worker, a one-slot queue, and an artificial 400 ms of work per
    // job: a burst of 8 concurrent requests must see some 200s and some
    // 429s, and every request must get *an* answer. Coalescing is off —
    // with it on, identical requests merge onto one job and the queue
    // can never fill (which `coalescing_collapses_identical_requests`
    // asserts); this test pins the backpressure path itself.
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 1,
        cache_cap: 16,
        coalesce: false,
        deadline: Duration::from_secs(30),
        worker_delay: Duration::from_millis(400),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    const BURST: usize = 8;

    let barrier = std::sync::Barrier::new(BURST);
    let statuses: Vec<u16> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..BURST)
            .map(|_| {
                let addr = &addr;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    one_shot(addr, "GET", "/tables/table1", None, Duration::from_secs(20))
                        .expect("request must complete, not hang")
                        .0
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = statuses.iter().filter(|&&s| s == 200).count();
    let busy = statuses.iter().filter(|&&s| s == 429).count();
    assert_eq!(ok + busy, BURST, "unexpected statuses: {statuses:?}");
    assert!(ok >= 1, "no request got through: {statuses:?}");
    assert!(busy >= 1, "queue never reported full: {statuses:?}");

    let (_, stats) = get(&addr, "/stats");
    let rejected = parse(&stats)
        .get("server")
        .and_then(|s| s.get("queue"))
        .and_then(|q| q.get("rejected"))
        .and_then(|v| v.as_u64())
        .expect("queue.rejected in /stats");
    assert!(rejected >= busy as u64, "rejected={rejected} < busy={busy}");

    handle.shutdown();
}

#[test]
fn coalescing_collapses_identical_requests_to_one_compute() {
    // The single-flight guarantee, end to end over real TCP: K
    // concurrent requests for one cold key are one compute and K
    // identical 200s. The one-slot queue doubles as a proof that the
    // coalesced followers never touched the queue — a second enqueue
    // would have answered 429.
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 1,
        cache_cap: 16,
        deadline: Duration::from_secs(30),
        worker_delay: Duration::from_millis(400),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    const BURST: usize = 8;

    let barrier = std::sync::Barrier::new(BURST);
    let responses: Vec<(u16, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..BURST)
            .map(|_| {
                let addr = &addr;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    one_shot(addr, "GET", "/tables/table1", None, Duration::from_secs(20))
                        .expect("request must complete, not hang")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let first = &responses[0].1;
    for (status, body) in &responses {
        assert_eq!(*status, 200, "every coalesced request gets the result");
        assert_eq!(body, first, "every response carries the same bytes");
    }

    let (_, stats) = get(&addr, "/stats");
    let stats = parse(&stats);
    let cache = stats.get("result_cache").expect("result_cache in /stats");
    let field = |name: &str| {
        cache
            .get(name)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("result_cache.{name} in /stats"))
    };
    assert_eq!(
        field("computes"),
        1,
        "{BURST} identical requests must cost exactly one compute: {}",
        stats.to_string_compact()
    );
    // Every request that neither computed nor hit the warm cache joined
    // the in-flight key (late arrivals may legitimately hit the cache).
    assert!(
        field("coalesced") >= 1,
        "no request coalesced: {}",
        stats.to_string_compact()
    );
    assert_eq!(
        field("coalesced") + field("hits") + field("computes"),
        BURST as u64,
        "every request is a compute, a join, or a hit: {}",
        stats.to_string_compact()
    );

    // The same counters on /metrics, under this engine's label (other
    // tests in this binary run their own engines concurrently).
    let engine_id = field("engine_id");
    let (status, text) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    let series = format!("gem5prof_result_cache_computes_total{{engine=\"{engine_id}\"}}");
    let computes_metric = text
        .lines()
        .find(|l| l.starts_with(&series))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or_else(|| panic!("{series} missing from /metrics:\n{text}"));
    assert_eq!(computes_metric, 1.0);

    handle.shutdown();
}
