//! End-to-end hardening tests for the failure paths the chaos harness
//! shakes out: injected panics must surface as 500s (never hangs), the
//! worker pool must survive them, and an expired deadline must return
//! 504 while the engine still finishes and caches the result.
//!
//! The chaos plan is process-global, so the tests serialize on a mutex.

use gem5prof_chaos::{self as chaos, Plan};
use gem5prof_served::http::one_shot;
use gem5prof_served::{serve, ServeConfig};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

const LONG: Duration = Duration::from_secs(900);

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    one_shot(addr, "POST", path, Some(body), LONG).expect("POST transport")
}

/// A plan that fires nothing except the named point, every time.
fn only(seed: u64, point: &str) -> Plan {
    Plan::new(seed).with_prob(0.0).with_point(point, 1.0)
}

#[test]
fn injected_panics_return_500_and_the_worker_pool_survives() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    chaos::install_quiet_panic_hook();

    // One worker: if an injected panic killed it, every later request
    // would hang or error — surviving twice proves the pool recovers.
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 8,
        cache_cap: 16,
        deadline: LONG,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    let spec = r#"{"platform":"intel_xeon","workload":"dedup","cpu":"atomic"}"#;

    // A panic inside the compute closure: the client gets a 500 naming
    // the panicked computation, immediately (not a deadline expiry).
    chaos::arm(only(1, "engine.job_panic"));
    let (status, body) = post(&addr, "/experiments", spec);
    assert_eq!(status, 500, "compute panic must be a 500: {body}");
    assert!(body.contains("panicked"), "unexpected 500 body: {body}");

    // A panic outside the compute path (the reply sender is dropped
    // without an answer): still a prompt 500, not a hang or a wait for
    // the full deadline.
    chaos::arm(only(2, "engine.worker_panic"));
    let t0 = Instant::now();
    let (status, body) = post(&addr, "/experiments", spec);
    assert_eq!(status, 500, "worker panic must be a 500: {body}");
    assert!(
        body.contains("worker failed"),
        "the 500 must say the worker died, not that a deadline expired: {body}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "a dead worker's request must fail fast"
    );

    // With chaos off, the same single worker computes the same spec:
    // the pool survived both panics and no failure was cached.
    chaos::disarm();
    let (status, body) = post(&addr, "/experiments", spec);
    assert_eq!(status, 200, "worker pool dead after panics: {body}");

    handle.shutdown();
}

#[test]
fn poisoned_results_are_discarded_not_cached() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    chaos::install_quiet_panic_hook();

    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 8,
        cache_cap: 16,
        deadline: LONG,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    let spec = r#"{"platform":"m1_pro","workload":"dedup","cpu":"atomic"}"#;

    // Every rendered body is torn before the cache sees it: the client
    // must get a 500, never the corrupted bytes.
    chaos::arm(only(3, "engine.job_poison"));
    let (status, body) = post(&addr, "/experiments", spec);
    assert_eq!(status, 500, "poisoned render must be discarded: {body}");
    assert!(
        !body.contains("<<chaos-poison>>"),
        "corrupted bytes reached the client: {body}"
    );

    // Chaos off: a clean recompute, which also proves the poisoned
    // entry was never cached (a cache hit would skip the recompute).
    chaos::disarm();
    let (status, body) = post(&addr, "/experiments", spec);
    assert_eq!(status, 200, "recompute after poison failed: {body}");
    gem5prof_served::minjson::parse(&body).expect("clean body must parse");

    handle.shutdown();
}

#[test]
fn deadline_expiry_returns_504_and_the_result_is_still_cached() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());

    // 400 ms of artificial work against a 150 ms deadline: the first
    // request must time out with a 504.
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 8,
        cache_cap: 16,
        deadline: Duration::from_millis(150),
        worker_delay: Duration::from_millis(400),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    let (status, body) =
        one_shot(&addr, "GET", "/tables/table1", None, LONG).expect("GET transport");
    assert_eq!(status, 504, "short deadline must expire: {body}");

    // The abandoned job keeps running and caches its result; once it
    // lands, the same request is a cache hit — which is the only way it
    // can answer 200 here, since any recompute would again out-sleep
    // the deadline.
    let patience = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) =
            one_shot(&addr, "GET", "/tables/table1", None, LONG).expect("GET transport");
        if status == 200 {
            gem5prof_served::minjson::parse(&body).expect("cached body must parse");
            break;
        }
        assert_eq!(status, 504, "only 504-until-cached is acceptable: {body}");
        assert!(
            Instant::now() < patience,
            "result never landed in the cache after deadline expiry"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    handle.shutdown();
}

#[test]
fn coalesced_leader_panic_fails_every_follower_fast() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    chaos::install_quiet_panic_hook();

    // The leader dies after the 300 ms delay window in which the other
    // requests coalesce onto its key. Every follower's reply sender is
    // dropped by the leader guard, so all of them — and the leader —
    // must get a prompt 500, never a hang or a full-deadline wait.
    chaos::arm(only(4, "engine.leader_panic"));
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 8,
        cache_cap: 16,
        deadline: Duration::from_secs(120),
        worker_delay: Duration::from_millis(300),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    const BURST: usize = 6;

    let barrier = std::sync::Barrier::new(BURST);
    let t0 = Instant::now();
    let statuses: Vec<(u16, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..BURST)
            .map(|_| {
                let addr = &addr;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    one_shot(addr, "GET", "/tables/table2", None, LONG)
                        .expect("request must complete, not hang")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (status, body) in &statuses {
        assert_eq!(
            *status, 500,
            "a dead leader must fail its followers: {body}"
        );
        assert!(
            body.contains("worker failed"),
            "the 500 must say the worker died, not that a deadline expired: {body}"
        );
    }
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "follower failures must be prompt, not deadline expiries"
    );

    // Chaos off: the pool survived every panic and the key was left
    // unowned (a stale in-flight entry would strand this request).
    chaos::disarm();
    let (status, body) = one_shot(&addr, "GET", "/tables/table2", None, LONG).expect("GET");
    assert_eq!(
        status, 200,
        "pool or in-flight map broken after leader panics: {body}"
    );

    handle.shutdown();
}

#[test]
fn deadline_abandoned_results_warm_the_disk_tier_across_restarts() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());

    let cache_dir =
        std::env::temp_dir().join(format!("gem5prof-chaos-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let slow = |dir: &std::path::Path| ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 8,
        cache_cap: 16,
        cache_dir: Some(dir.to_path_buf()),
        deadline: Duration::from_millis(150),
        worker_delay: Duration::from_millis(400),
        ..ServeConfig::default()
    };

    // First daemon: the request 504s against its deadline, but the
    // abandoned job must still land the result in BOTH tiers.
    let handle = serve(slow(&cache_dir)).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    let (status, body) =
        one_shot(&addr, "GET", "/tables/table1", None, LONG).expect("GET transport");
    assert_eq!(status, 504, "short deadline must expire: {body}");
    let patience = Instant::now() + Duration::from_secs(10);
    let reference = loop {
        let (status, body) =
            one_shot(&addr, "GET", "/tables/table1", None, LONG).expect("GET transport");
        if status == 200 {
            break body;
        }
        assert!(
            Instant::now() < patience,
            "result never landed in the memory tier after deadline expiry"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    // Shutdown joins the worker, so the write-behind is on disk by now.
    handle.shutdown();

    // Second daemon, same directory, cold memory tier: the only way it
    // can answer inside the 150 ms deadline is a disk hit — a recompute
    // would again out-sleep the deadline and 504.
    let handle = serve(slow(&cache_dir)).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    let (status, body) =
        one_shot(&addr, "GET", "/tables/table1", None, LONG).expect("GET transport");
    assert_eq!(
        status, 200,
        "restarted daemon must serve from the disk warm tier: {body}"
    );
    assert_eq!(body, reference, "disk tier must round-trip the exact bytes");
    let (_, stats) = one_shot(&addr, "GET", "/stats", None, LONG).expect("GET transport");
    let doc = gem5prof_served::minjson::parse(&stats).expect("stats JSON");
    let disk_hits = doc
        .get("result_cache")
        .and_then(|c| c.get("disk"))
        .and_then(|d| d.get("hits"))
        .and_then(|v| v.as_u64())
        .expect("result_cache.disk.hits in /stats");
    assert!(disk_hits >= 1, "no disk hit recorded: {stats}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
}
