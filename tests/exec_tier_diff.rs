//! Differential interp-vs-block test harness.
//!
//! The block execution tier's contract is *byte identity*: every stat,
//! trace entry and final machine state must match the interp tier
//! exactly — the tier may only change how much host work the event loop
//! performs. This harness pins that contract three ways:
//!
//! 1. every paper kernel, on both block-capable CPU models, in both SE
//!    and FS modes (FS with a cranked-up timer so interrupts land in
//!    the middle of decoded blocks);
//! 2. seeded random guest programs (ALU soup, loads/stores, forward and
//!    backward branches, multi-hart lockstep) — a failing case panics
//!    with a one-line `replay: Gen::new(0x…)` seed repro courtesy of
//!    [`testkit::run_cases`];
//! 3. pathological block-cache shapes (capacity 1–2, forcing constant
//!    eviction) which must recompile endlessly but never diverge.

use gem5sim::config::{CpuModel, ExecTier, SimMode, SystemConfig};
use gem5sim::system::{SimResult, System};
use gem5sim::trace::{TraceEntry, Tracer, VecTracer};
use gem5sim_isa::asm::ProgramBuilder;
use gem5sim_isa::exec::ArchState;
use gem5sim_isa::{Program, Reg};
use gem5sim_workloads::{Scale, Workload};
use std::cell::RefCell;
use std::rc::Rc;
use testkit::{prop_assert, prop_assert_eq, run_cases, Gen};

/// Everything observable about one simulation run.
struct TierRun {
    result: SimResult,
    trace: Vec<TraceEntry>,
    arch: Vec<ArchState>,
    mem_checksum: u64,
    blocks_compiled: u64,
}

fn run_tier(prog: &Program, cfg: SystemConfig) -> TierRun {
    let tracer = Rc::new(RefCell::new(VecTracer::default()));
    let num_cpus = cfg.num_cpus;
    let mut sys = System::new(cfg, prog.clone());
    sys.set_tracer(Tracer::new(tracer.clone()));
    let result = sys.run();
    let arch = (0..num_cpus).map(|i| sys.arch_state(i)).collect();
    let mem_checksum = sys.mem_checksum();
    let blocks_compiled = sys.block_stats().compiled;
    drop(sys);
    TierRun {
        result,
        trace: Rc::try_unwrap(tracer).unwrap().into_inner().entries,
        arch,
        mem_checksum,
        blocks_compiled,
    }
}

/// Runs `prog` under both tiers and asserts every observable matches.
fn assert_tiers_match(prog: &Program, cfg: SystemConfig, label: &str) {
    let interp = run_tier(prog, cfg.clone().with_exec_tier(ExecTier::Interp));
    let block = run_tier(prog, cfg.with_exec_tier(ExecTier::Block));
    assert_eq!(
        interp.result, block.result,
        "{label}: SimResult diverged between tiers"
    );
    assert_eq!(
        interp.trace, block.trace,
        "{label}: instruction traces diverged between tiers"
    );
    assert_eq!(
        interp.arch, block.arch,
        "{label}: final register state diverged between tiers"
    );
    assert_eq!(
        interp.mem_checksum, block.mem_checksum,
        "{label}: final memory images diverged between tiers"
    );
    assert_eq!(
        interp.blocks_compiled, 0,
        "{label}: interp tier must not touch the block cache"
    );
    assert!(
        block.blocks_compiled > 0,
        "{label}: block tier compiled nothing — it did not actually run"
    );
}

/// All nine paper kernels × (Atomic, Timing) × (SE, FS). The FS legs
/// shorten the timer interval to 1 µs so interrupts redirect the pc in
/// the middle of hot blocks many times per run.
#[test]
fn kernels_match_across_tiers() {
    let mut irqs_seen = 0u64;
    for w in Workload::PARSEC {
        let prog = w.program(Scale::Test);
        for model in [CpuModel::Atomic, CpuModel::Timing] {
            for mode in [SimMode::Se, SimMode::Fs] {
                let mut cfg = SystemConfig::new(model, mode);
                if mode == SimMode::Fs {
                    cfg.timer_interval_us = 1;
                }
                assert_tiers_match(&prog, cfg.clone(), &format!("{w}/{model:?}/{mode:?}"));
                if mode == SimMode::Fs {
                    let r = run_tier(&prog, cfg.with_exec_tier(ExecTier::Block));
                    irqs_seen += r.result.irqs_taken;
                }
            }
        }
    }
    assert!(
        irqs_seen > 0,
        "FS legs never took an interrupt — the irq-under-batching path went untested"
    );
}

/// The boot and sieve workloads ride along (they exercise firmware
/// delays and a different control-flow shape than the PARSEC kernels).
#[test]
fn boot_and_sieve_match_across_tiers() {
    for w in [Workload::BootExit, Workload::Sieve] {
        let prog = w.program(Scale::Test);
        for mode in [SimMode::Se, SimMode::Fs] {
            let mut cfg = SystemConfig::new(CpuModel::Atomic, mode);
            if mode == SimMode::Fs {
                cfg.timer_interval_us = 1;
            }
            assert_tiers_match(&prog, cfg, &format!("{w}/Atomic/{mode:?}"));
        }
    }
}

/// Multi-hart systems degrade to per-instruction execution (ties at the
/// same tick never batch) — results must still be identical.
#[test]
fn multi_hart_lockstep_matches_across_tiers() {
    let prog = Workload::Dedup.program(Scale::Test);
    for mode in [SimMode::Se, SimMode::Fs] {
        let cfg = SystemConfig::new(CpuModel::Atomic, mode).with_cpus(2);
        assert_tiers_match(&prog, cfg, &format!("dedup x2/{mode:?}"));
    }
}

/// A tiny block cache (capacity 1) recompiles on practically every
/// block transition; eviction must be invisible to results.
#[test]
fn capacity_starved_cache_never_changes_results() {
    let prog = Workload::Canneal.program(Scale::Test);
    let cfg = SystemConfig::new(CpuModel::Timing, SimMode::Se).with_block_cache_blocks(1);
    assert_tiers_match(&prog, cfg.clone(), "canneal/cap=1");
    let starved = run_tier(&prog, cfg.with_exec_tier(ExecTier::Block));
    let roomy = run_tier(
        &prog,
        SystemConfig::new(CpuModel::Timing, SimMode::Se).with_exec_tier(ExecTier::Block),
    );
    assert_eq!(starved.result, roomy.result, "capacity changed results");
    assert!(
        starved.blocks_compiled > roomy.blocks_compiled,
        "capacity 1 should force recompilation"
    );
}

/// Minor and O3 don't implement the block tier; a `Block` config must
/// transparently run them per-instruction with identical results.
#[test]
fn detailed_models_ignore_the_block_tier() {
    let prog = Workload::WaterNsquared.program(Scale::Test);
    for model in [CpuModel::Minor, CpuModel::O3] {
        let cfg = SystemConfig::new(model, SimMode::Se);
        let interp = run_tier(&prog, cfg.clone().with_exec_tier(ExecTier::Interp));
        let block = run_tier(&prog, cfg.with_exec_tier(ExecTier::Block));
        assert_eq!(interp.result, block.result, "{model:?}");
        assert_eq!(
            block.blocks_compiled, 0,
            "{model:?} must not use the block cache"
        );
    }
}

/// Registers random instructions may freely clobber. Excludes the
/// irq-handler scratch registers (`s8`/`t6`), the ABI plumbing
/// (`sp`/`tp`/`a7`) and the fuzz base registers (`s2`/`s3`).
const POOL: [Reg; 10] = [
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
];

/// Builds a random guest program: ALU soup, loads/stores through two
/// scratch base registers, and branches to arbitrary forward/backward
/// labels. Every program is legal; nontermination is handled by a
/// `max_insts` cap (which both tiers must honor identically).
fn gen_program(g: &mut Gen) -> Program {
    let mut b = ProgramBuilder::new();
    b.li(Reg::S2, 0x3000).li(Reg::S3, 0x4000);
    let n = g.usize_in(16..96);
    for i in 0..n {
        b.label(format!("L{i}"));
        let rd = *g.pick(&POOL);
        let r1 = *g.pick(&POOL);
        let r2 = *g.pick(&POOL);
        match g.u32_in(0..12) {
            0 => b.add(rd, r1, r2),
            1 => b.sub(rd, r1, r2),
            2 => b.mul(rd, r1, r2),
            3 => b.div(rd, r1, r2),
            4 => b.xor(rd, r1, r2),
            5 => b.addi(rd, r1, g.i64_in(-2048..2048)),
            6 => b.slli(rd, r1, g.i64_in(0..63)),
            7 => b.li(rd, g.i64_in(-1_000_000..1_000_000)),
            8 => b.ld(rd, Reg::S2, g.i64_in(0..128) * 8),
            9 => b.sd(r1, Reg::S3, g.i64_in(0..128) * 8),
            10 => b.beq(r1, r2, format!("L{}", g.usize_in(0..n))),
            _ => b.bne(r1, r2, format!("L{}", g.usize_in(0..n))),
        };
    }
    b.halt();
    b.assemble().expect("generated program must assemble")
}

/// ≥100 seeded random programs through both tiers. On failure,
/// `run_cases` prints the failing seed for one-line local replay.
#[test]
fn fuzzed_programs_match_across_tiers() {
    run_cases("exec_tier_diff_fuzz", 128, |g| {
        let prog = gen_program(g);
        let model = if g.bool() {
            CpuModel::Atomic
        } else {
            CpuModel::Timing
        };
        let mode = if g.bool() { SimMode::Se } else { SimMode::Fs };
        let mut cfg = SystemConfig::new(model, mode)
            .with_cpus(if g.u32_in(0..5) == 0 { 2 } else { 1 })
            .with_max_insts(3_000);
        if mode == SimMode::Fs {
            cfg.timer_interval_us = 1;
        }
        if g.bool() {
            // Starve the cache to interleave eviction with execution.
            cfg = cfg.with_block_cache_blocks(g.usize_in(1..4));
        }
        let interp = run_tier(&prog, cfg.clone().with_exec_tier(ExecTier::Interp));
        let block = run_tier(&prog, cfg.with_exec_tier(ExecTier::Block));
        prop_assert_eq!(&interp.result, &block.result, "SimResult diverged");
        prop_assert!(interp.trace == block.trace, "traces diverged");
        prop_assert_eq!(&interp.arch, &block.arch, "register state diverged");
        prop_assert_eq!(
            interp.mem_checksum,
            block.mem_checksum,
            "memory images diverged"
        );
        Ok(())
    });
}
