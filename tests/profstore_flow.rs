//! End-to-end flow through the continuous profiling store: boot
//! `gem5prof-served` with `--profile-dir`, capture a baseline window,
//! bless it, inflate `guest_sim` accounting and prove `/profile/diff`
//! trips the hot-span regression gate, then restart the daemon on the
//! same directory with one segment corrupted on disk — the survivor
//! must come back, the corrupt segment must be counted and skipped,
//! and snapshot ids must never be reused.
//!
//! One `#[test]`: snapshot capture drains and resets the process-global
//! span table, so concurrent tests in this binary would race on it.

use gem5prof_served::http::one_shot;
use gem5prof_served::minjson;
use gem5prof_served::{serve, ServeConfig};
use std::path::PathBuf;
use std::time::Duration;

const LONG: Duration = Duration::from_secs(900);

fn get(addr: &str, path: &str) -> (u16, String) {
    one_shot(addr, "GET", path, None, LONG).expect("GET transport")
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    one_shot(addr, "POST", path, Some(body), LONG).expect("POST transport")
}

fn parse(body: &str) -> minjson::Json {
    minjson::parse(body).unwrap_or_else(|e| panic!("response is not JSON ({e}): {body}"))
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("profstore-flow-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp profile dir");
    dir
}

#[test]
fn profstore_flow_end_to_end() {
    let dir = tmpdir();

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        deadline: LONG,
        profile_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let handle = serve(cfg.clone()).expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    // --- baseline window: one real compute, snapshot, bless ----------
    let spec_a = r#"{"platform":"intel_xeon","workload":"dedup","cpu":"atomic"}"#;
    assert_eq!(post(&addr, "/experiments", spec_a).0, 200);
    let (status, body) = post(&addr, "/profile/snapshot?label=base", "");
    assert_eq!(status, 200, "snapshot failed: {body}");
    let base_id = parse(&body).get("id").and_then(|v| v.as_u64()).unwrap();
    assert_eq!(base_id, 1, "first snapshot id");
    let (status, body) = post(&addr, "/profile/bless", "");
    assert_eq!(status, 200, "bless failed: {body}");
    assert_eq!(
        parse(&body).get("blessed").and_then(|v| v.as_u64()),
        Some(1)
    );

    // --- inflated window: pad guest_sim accounting by 3 s per call ---
    // Accounting-only inflation (no wall-clock cost): the next window's
    // guest_sim self time per call dwarfs the baseline's.
    gem5prof_obs::span::set_inflation(Some(("guest_sim", 3_000_000_000)));
    let spec_b = r#"{"platform":"intel_xeon","workload":"dedup","cpu":"timing"}"#;
    assert_eq!(post(&addr, "/experiments", spec_b).0, 200);
    let (status, body) = post(&addr, "/profile/snapshot?label=inflated", "");
    assert_eq!(status, 200, "snapshot failed: {body}");
    gem5prof_obs::span::set_inflation(None);

    // --- the diff detects the deliberately slowed hot span -----------
    let (status, body) = get(&addr, "/profile/diff");
    assert_eq!(status, 200, "diff failed: {body}");
    let doc = parse(&body);
    let gate = doc.get("gate").expect("gate block in diff response");
    assert_eq!(
        gate.get("pass").and_then(|v| v.as_bool()),
        Some(false),
        "a 3 s/call guest_sim inflation must fail the gate: {body}"
    );
    let checks = match gate.get("checks") {
        Some(minjson::Json::Arr(rows)) => rows,
        other => panic!("gate.checks must be an array, got {other:?}"),
    };
    let guest_sim = checks
        .iter()
        .find(|c| c.get("span").and_then(|v| v.as_str()) == Some("guest_sim"))
        .expect("guest_sim gate check");
    assert_eq!(
        guest_sim.get("regressed").and_then(|v| v.as_bool()),
        Some(true),
        "guest_sim must be flagged as regressed: {body}"
    );
    let delta = guest_sim
        .get("delta_pct")
        .and_then(|v| v.as_f64())
        .expect("guest_sim delta_pct");
    assert!(delta > 25.0, "delta_pct should be enormous, got {delta}");

    // Collapsed-stack output: two-column difffolded text, not JSON.
    let (status, text) = get(&addr, "/profile/diff?format=collapsed");
    assert_eq!(status, 200);
    assert!(
        text.lines().any(|l| l.contains("guest_sim")),
        "collapsed output must mention guest_sim:\n{text}"
    );

    // --- satellite: unknown query params are a 400 naming the key ----
    let (status, body) = get(&addr, "/profile/history?foo=1");
    assert_eq!(status, 400, "unknown history param must 400: {body}");
    assert!(body.contains("`foo`"), "400 must name the key: {body}");
    let (status, body) = get(&addr, "/profile/diff?a=1&b=2&bogus=3");
    assert_eq!(status, 400, "unknown diff param must 400: {body}");
    assert!(body.contains("`bogus`"), "400 must name the key: {body}");

    // Unknown snapshot selectors are a 404 naming the selector.
    let (status, body) = get(&addr, "/profile/diff?a=99");
    assert_eq!(status, 404, "unknown snapshot must 404: {body}");
    assert!(body.contains("`99`"), "404 must name the selector: {body}");

    // /stats carries the store's counters.
    let (_, stats) = get(&addr, "/stats");
    let stats = parse(&stats);
    let prof = stats.get("profstore").expect("profstore block in /stats");
    assert_eq!(prof.get("snapshots").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(prof.get("blessed").and_then(|v| v.as_u64()), Some(1));

    handle.shutdown();

    // --- corrupt the newest segment on disk, restart, recover --------
    let newest = std::fs::read_dir(&dir)
        .expect("read profile dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "g5ps"))
        .max()
        .expect("at least one segment on disk");
    let mut bytes = std::fs::read(&newest).expect("read segment");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&newest, &bytes).expect("corrupt segment");

    let handle = serve(cfg).expect("rebind");
    let addr = handle.addr().to_string();
    let (status, body) = get(&addr, "/profile/history");
    assert_eq!(status, 200, "history after restart failed: {body}");
    let doc = parse(&body);
    let snaps = match doc.get("snapshots") {
        Some(minjson::Json::Arr(rows)) => rows,
        other => panic!("snapshots must be an array, got {other:?}"),
    };
    assert_eq!(snaps.len(), 1, "only the intact segment survives: {body}");
    assert_eq!(
        snaps[0].get("label").and_then(|v| v.as_str()),
        Some("base"),
        "the survivor is the baseline: {body}"
    );
    let corrupt = doc
        .get("stats")
        .and_then(|s| s.get("corrupt"))
        .and_then(|v| v.as_u64())
        .expect("stats.corrupt in history");
    assert!(corrupt >= 1, "corrupt segment must be counted: {body}");

    // The blessed marker survived too, and diffing across the restart
    // works (blessed vs latest both resolve to the surviving baseline).
    assert_eq!(doc.get("blessed").and_then(|v| v.as_u64()), Some(1));
    let (status, body) = get(&addr, "/profile/diff");
    assert_eq!(status, 200, "diff across restart failed: {body}");
    assert_eq!(
        parse(&body)
            .get("gate")
            .and_then(|g| g.get("pass"))
            .and_then(|v| v.as_bool()),
        Some(true),
        "identical windows must pass the gate: {body}"
    );

    // Ids are never reused: the corrupted segment held id 2, so the
    // next capture must take id 3 even though id 2 no longer decodes.
    let (status, body) = post(&addr, "/profile/snapshot?label=after", "");
    assert_eq!(status, 200, "snapshot after restart failed: {body}");
    assert_eq!(
        parse(&body).get("id").and_then(|v| v.as_u64()),
        Some(3),
        "id 2 was torn on disk and must not be reused: {body}"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
