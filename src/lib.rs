//! Root façade crate for the gem5-profiling workspace.
//!
//! Re-exports the public API of the member crates so that examples and
//! integration tests can use a single import root. See `README.md` for a
//! tour and `DESIGN.md` for the system inventory.

pub use gem5prof as prof;
pub use gem5sim as sim;
pub use gem5sim_workloads as workloads;
pub use hostmodel;
pub use platforms;
