#!/usr/bin/env sh
# Regenerates BENCH_serving.json: the repeated-spec steady-state
# baseline plus the cold-cache duplicate-heavy comparison of
# single-flight coalescing vs. --no-coalesce.
#
# The duplicate-heavy pair uses --worker-delay-ms 1000 (an artificial
# 1 s compute) so the measured effect is queueing, not render noise:
# without coalescing every concurrent duplicate of the cold hot key
# computes independently and the herd serializes over the 2 workers;
# with coalescing the herd costs one compute.
#
# Also records the execution-tier comparison: interp vs block cold
# computes on the bare engine (no observer), via exec_tier_bench — and
# the cluster comparison: the same duplicate-heavy workload against one
# node vs. four nodes behind the consistent-hash router, with the
# fleet-wide compute count (must stay <= unique keys) — and the serving
# core comparison: thread-per-connection vs readiness loop at 512
# closed-loop clients, plus the 10 000-connection open-loop run — and
# the microbench guest-MIPS matrix (every variant x Atomic/Timing, both
# tiers, each run pinned by its guest checksum).
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace

# Provenance recorded by loadgen into every report's config block:
# GEM5PROF_COMMIT plus (via --profile-snapshot) the id of a profstore
# snapshot capturing the run's span/metrics window, so a surprising
# number in BENCH_serving.json can be diffed later with
# `servectl profile diff`.
GEM5PROF_COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export GEM5PROF_COMMIT

PORT_FILE="$(mktemp)"
OUT_DIR="$(mktemp -d)"
PROF_DIR="$(mktemp -d)"
SERVED_PID=""
CLUSTER_PID=""
CLUSTER_PORT_FILE=""
cleanup() {
    if [ -n "$SERVED_PID" ]; then
        kill "$SERVED_PID" 2>/dev/null || true
        wait "$SERVED_PID" 2>/dev/null || true
    fi
    if [ -n "$CLUSTER_PID" ]; then
        kill "$CLUSTER_PID" 2>/dev/null || true
        wait "$CLUSTER_PID" 2>/dev/null || true
    fi
    rm -rf "$PORT_FILE" "$OUT_DIR" "$PROF_DIR" "$CLUSTER_PORT_FILE"
}
trap cleanup EXIT INT TERM

# start_daemon <extra flags...> — boots a fresh daemon on an ephemeral
# port and sets ADDR.
start_daemon() {
    rm -f "$PORT_FILE"
    target/release/gem5prof-served --addr 127.0.0.1:0 --deadline-ms 900000 \
        --profile-dir "$PROF_DIR" --port-file "$PORT_FILE" "$@" &
    SERVED_PID=$!
    i=0
    while [ ! -s "$PORT_FILE" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "bench_serving: daemon never wrote its port file" >&2
            exit 1
        fi
        sleep 0.1
    done
    ADDR="$(cat "$PORT_FILE")"
}

stop_daemon() {
    kill -TERM "$SERVED_PID"
    wait "$SERVED_PID" || true
    SERVED_PID=""
}

# --- steady state: repeated-spec workload against a warm cache --------
start_daemon
# Prime fig01 so the run measures cache-served throughput, not one cold
# render amortized over the fleet.
target/release/servectl --addr "$ADDR" --timeout-ms 900000 \
    'figures/fig01?fidelity=quick' > /dev/null
target/release/loadgen --addr "$ADDR" --clients 64 --requests 100 \
    --profile-snapshot --json > "$OUT_DIR/steady.json"
stop_daemon

# --- duplicate-heavy cold cache: coalescing on, then off --------------
start_daemon --workers 2 --worker-delay-ms 1000
target/release/loadgen --addr "$ADDR" --clients 32 --requests 3 \
    --paths /tables/table1,/tables/table2 --duplicate-fraction 0.9 \
    --profile-snapshot --json > "$OUT_DIR/coalesced.json"
stop_daemon

start_daemon --workers 2 --worker-delay-ms 1000 --no-coalesce
target/release/loadgen --addr "$ADDR" --clients 32 --requests 3 \
    --paths /tables/table1,/tables/table2 --duplicate-fraction 0.9 \
    --profile-snapshot --json > "$OUT_DIR/no_coalesce.json"
stop_daemon

# --- cluster: duplicate-heavy, 1 node vs 4 nodes ----------------------
# Same cold-cache duplicate-heavy mix as above (2 unique table keys,
# 0.9 duplicate fraction, 1 s artificial compute). Single node first,
# then 4 nodes behind the router; the fleet's total computes are read
# from every member afterwards — the ring + per-owner single-flight
# must keep them <= the 2 unique keys.
start_daemon --workers 2 --worker-delay-ms 1000
target/release/loadgen --addr "$ADDR" --clients 32 --requests 3 \
    --paths /tables/table1,/tables/table2 --duplicate-fraction 0.9 \
    --profile-snapshot --json > "$OUT_DIR/cluster1.json"
stop_daemon

CLUSTER_PORT_FILE="$(mktemp)"
rm -f "$CLUSTER_PORT_FILE"
# The router inherits stdout; point it at stderr so command
# substitutions and pipes over this script's stdout see EOF promptly.
target/release/gem5prof-cluster --addr 127.0.0.1:0 --spawn 4 \
    --port-file "$CLUSTER_PORT_FILE" \
    --node-arg --deadline-ms --node-arg 900000 \
    --node-arg --workers --node-arg 2 \
    --node-arg --worker-delay-ms --node-arg 1000 >&2 &
CLUSTER_PID=$!
i=0
while [ ! -s "$CLUSTER_PORT_FILE" ]; do
    i=$((i + 1))
    if [ "$i" -gt 200 ]; then
        echo "bench_serving: cluster router never wrote its port file" >&2
        exit 1
    fi
    sleep 0.1
done
RADDR="$(cat "$CLUSTER_PORT_FILE")"
i=0
until target/release/servectl --addr "$RADDR" --timeout-ms 5000 healthz \
    | grep -q '"members_alive": *4'; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "bench_serving: cluster never reached 4 live members" >&2
        exit 1
    fi
    sleep 0.1
done
target/release/loadgen --addr "$RADDR" --clients 32 --requests 3 \
    --paths /tables/table1,/tables/table2 --duplicate-fraction 0.9 \
    --json > "$OUT_DIR/cluster4.json"
FLEET_COMPUTES=0
for MADDR in $(target/release/servectl --addr "$RADDR" --timeout-ms 5000 cluster status \
    | grep -o '"addr": *"[^"]*"' | cut -d'"' -f4); do
    NODE_COMPUTES="$(target/release/servectl --addr "$MADDR" --timeout-ms 5000 metrics \
        | awk '/^gem5prof_result_cache_computes_total/ { s += $2 } END { print s+0 }')"
    FLEET_COMPUTES=$((FLEET_COMPUTES + NODE_COMPUTES))
done
kill -TERM "$CLUSTER_PID"
wait "$CLUSTER_PID" || true
rm -f "$CLUSTER_PORT_FILE"
if [ "$FLEET_COMPUTES" -gt 2 ]; then
    echo "bench_serving: fleet computed $FLEET_COMPUTES times for 2 unique keys" >&2
    exit 1
fi

# --- serving core: thread-per-conn vs readiness loop ------------------
# The same 512-client closed-loop /healthz workload against the legacy
# blocking core (--thread-per-conn, kept as the bench baseline) and the
# readiness-loop core — then the regime only the readiness core can
# hold: 10 000 concurrent open-loop connections from one generator
# thread. The long idle timeout keeps early connections alive while the
# later waves are still dialing.
start_daemon --thread-per-conn --max-conns 12000 --read-timeout-ms 30000
target/release/loadgen --addr "$ADDR" --clients 512 --requests 20 \
    --paths /healthz --json > "$OUT_DIR/serving_threads.json"
stop_daemon

start_daemon --max-conns 12000 --read-timeout-ms 30000
target/release/loadgen --addr "$ADDR" --clients 512 --requests 20 \
    --paths /healthz --json > "$OUT_DIR/serving_core.json"
target/release/loadgen --addr "$ADDR" --open-loop --connections 10000 \
    --requests 3 --paths /healthz --json > "$OUT_DIR/serving_10k.json"
stop_daemon

# --- execution tiers: interp vs block cold compute, bare engine -------
target/release/exec_tier_bench --scale simmedium --reps 3 --json \
    > "$OUT_DIR/exec_tier.json"

# --- microbenchmarks: guest-MIPS matrix, both tiers verified ----------
# Every variant under Atomic and Timing, interp and block; the binary
# exits nonzero if the tiers diverge or any checksum is wrong, so a
# benchmark refresh doubles as a correctness gate.
target/release/microbench --json > "$OUT_DIR/microbench.json"

# --- stitch the reports into BENCH_serving.json -----------------------
awk -v fleet_computes="$FLEET_COMPUTES" '
function slurp(path, indent,   line, first, out) {
    first = 1
    out = ""
    while ((getline line < path) > 0) {
        if (first) { out = line; first = 0 }
        else { out = out "\n" indent line }
    }
    close(path)
    return out
}
function rps(path,   line, v) {
    while ((getline line < path) > 0) {
        if (line ~ /"throughput_rps"/) {
            gsub(/[^0-9.]/, "", line)
            v = line + 0
        }
    }
    close(path)
    return v
}
BEGIN {
    dir = ARGV[1]
    steady = slurp(dir "/steady.json", "  ")
    co = slurp(dir "/coalesced.json", "    ")
    nc = slurp(dir "/no_coalesce.json", "    ")
    c1 = slurp(dir "/cluster1.json", "    ")
    c4 = slurp(dir "/cluster4.json", "    ")
    st = slurp(dir "/serving_threads.json", "    ")
    sc = slurp(dir "/serving_core.json", "    ")
    s10k = slurp(dir "/serving_10k.json", "    ")
    et = slurp(dir "/exec_tier.json", "  ")
    mb = slurp(dir "/microbench.json", "  ")
    speedup = rps(dir "/coalesced.json") / rps(dir "/no_coalesce.json")
    print "{"
    print "  \"steady_state\": " steady ","
    print "  \"duplicate_heavy_cold\": {"
    print "    \"coalesced\": " co ","
    print "    \"no_coalesce\": " nc ","
    printf "    \"coalescing_speedup\": %.2f\n", speedup
    print "  },"
    print "  \"cluster_duplicate_heavy\": {"
    print "    \"single_node\": " c1 ","
    print "    \"four_nodes_routed\": " c4 ","
    print "    \"four_node_fleet_computes\": " fleet_computes ","
    print "    \"unique_keys\": 2"
    print "  },"
    print "  \"serving\": {"
    print "    \"thread_per_conn_512\": " st ","
    print "    \"readiness_core_512\": " sc ","
    print "    \"open_loop_10k\": " s10k
    print "  },"
    print "  \"exec_tier\": " et ","
    print "  \"microbench\": " mb
    print "}"
}' "$OUT_DIR" > BENCH_serving.json

echo "bench_serving: wrote BENCH_serving.json"
grep coalescing_speedup BENCH_serving.json
grep geomean BENCH_serving.json
grep all_verified BENCH_serving.json
