#!/usr/bin/env sh
# Tier-1 verification: build, test, and format-check the whole workspace
# fully offline (the workspace has zero external dependencies), then
# smoke-test the serving daemon end to end.
set -eu
cd "$(dirname "$0")/.."

# --workspace so member binaries (gem5prof-served, servectl, loadgen)
# are built too — the root package alone does not pull them in.
cargo build --release --offline --workspace
# The root suite includes the golden-output regression tests
# (tests/golden_repro.rs) — every quick-fidelity figure/table diffed
# byte-for-byte against tests/golden/, under both execution tiers —
# and the interp-vs-block differential gate (tests/exec_tier_diff.rs):
# kernels, fuzzed programs, multi-hart, and starved block caches.
cargo test -q --offline
cargo test -q --offline -p gem5prof-served
cargo fmt --check

# Cross-tier equivalence smoke on the bare engine: exec_tier_bench
# exits nonzero if any (workload, CPU model) cell diverges between the
# interp and block tiers.
target/release/exec_tier_bench --scale simsmall --reps 1

# Block-tier determinism: full quick-fidelity artifact regeneration
# must be byte-identical across runs and across runner thread counts
# (batching decisions depend only on guest state, never on host timing).
DET_A="$(mktemp)"
DET_B="$(mktemp)"
GEM5PROF_EXEC_TIER=block GEM5PROF_THREADS=1 \
    target/release/repro all --quick > "$DET_A"
GEM5PROF_EXEC_TIER=block GEM5PROF_THREADS=4 \
    target/release/repro all --quick > "$DET_B"
if ! cmp -s "$DET_A" "$DET_B"; then
    echo "verify: block tier output differs across thread counts" >&2
    diff "$DET_A" "$DET_B" | head -20 >&2 || true
    rm -f "$DET_A" "$DET_B"
    exit 1
fi
rm -f "$DET_A" "$DET_B"
echo "verify: block tier byte-identical across thread counts"

# Serving smoke test: boot the daemon on an ephemeral port, probe it
# with servectl, then drain it gracefully with SIGTERM.
PORT_FILE="$(mktemp)"
SERVED_PID=""
cleanup() {
    if [ -n "$SERVED_PID" ]; then
        kill "$SERVED_PID" 2>/dev/null || true
    fi
    rm -f "$PORT_FILE"
}
trap cleanup EXIT INT TERM

rm -f "$PORT_FILE"
# A cold quick-fidelity fig01 can exceed the default 30 s request
# deadline on a slow single-core machine; the smoke test is about
# correctness, not latency, so give the daemon a generous deadline.
target/release/gem5prof-served --addr 127.0.0.1:0 --deadline-ms 900000 \
    --port-file "$PORT_FILE" &
SERVED_PID=$!

i=0
while [ ! -s "$PORT_FILE" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "verify: daemon never wrote its port file" >&2
        exit 1
    fi
    if ! kill -0 "$SERVED_PID" 2>/dev/null; then
        echo "verify: daemon exited before binding" >&2
        exit 1
    fi
    sleep 0.1
done

ADDR="$(cat "$PORT_FILE")"
target/release/servectl --addr "$ADDR" --timeout-ms 5000 healthz

# Observability smoke: scrape /metrics before and after a figure
# request and check the served-request counter actually incremented.
scrape_requests() {
    target/release/servectl --addr "$ADDR" --timeout-ms 5000 metrics \
        | awk '$1 == "gem5prof_served_requests_total" { print $2 }'
}
BEFORE="$(scrape_requests)"
if [ -z "$BEFORE" ]; then
    echo "verify: /metrics is missing gem5prof_served_requests_total" >&2
    exit 1
fi
target/release/servectl --addr "$ADDR" --timeout-ms 900000 \
    'figures/fig01?fidelity=quick' > /dev/null
AFTER="$(scrape_requests)"
if [ "$AFTER" -le "$BEFORE" ]; then
    echo "verify: request counter did not increment ($BEFORE -> $AFTER)" >&2
    exit 1
fi
echo "verify: /metrics counter incremented ($BEFORE -> $AFTER)"

kill -TERM "$SERVED_PID"
wait "$SERVED_PID"
SERVED_PID=""
echo "verify: serving smoke test passed"

# Microbench smoke: one strided microbenchmark and one 2-hart co-run,
# served by a daemon pinned to each execution tier in turn. Every
# response must carry the guest_mips rate and per-hart checksums, and
# the checksums must be identical across tiers — the end-to-end
# HTTP-visible face of the differential suite.
MB_SPEC='{"platform":"intel_xeon","workload":"mem_stride","cpu":"timing"}'
CORUN_SPEC='{"platform":"intel_xeon","workload":"mem_stride","cpu":"timing","harts":2,"corun":"alu"}'
INTERP_SUMS=""
BLOCK_SUMS=""
for TIER in interp block; do
    rm -f "$PORT_FILE"
    GEM5PROF_EXEC_TIER="$TIER" target/release/gem5prof-served \
        --addr 127.0.0.1:0 --deadline-ms 900000 --port-file "$PORT_FILE" &
    SERVED_PID=$!
    i=0
    while [ ! -s "$PORT_FILE" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "verify: $TIER-tier daemon never wrote its port file" >&2
            exit 1
        fi
        sleep 0.1
    done
    ADDR="$(cat "$PORT_FILE")"
    TIER_SUMS=""
    for SPEC in "$MB_SPEC" "$CORUN_SPEC"; do
        BODY="$(target/release/servectl --addr "$ADDR" --timeout-ms 900000 \
            --post "$SPEC" experiments)"
        if ! printf '%s' "$BODY" | grep -q '"guest_mips"'; then
            echo "verify: $TIER response missing guest_mips for $SPEC" >&2
            exit 1
        fi
        SUMS="$(printf '%s' "$BODY" | grep -o '0x[0-9a-f]\{16\}' | tr '\n' ' ')"
        if [ -z "$SUMS" ]; then
            echo "verify: $TIER response missing checksums for $SPEC" >&2
            exit 1
        fi
        TIER_SUMS="$TIER_SUMS$SUMS/"
    done
    if [ "$TIER" = interp ]; then INTERP_SUMS="$TIER_SUMS"; else BLOCK_SUMS="$TIER_SUMS"; fi
    kill -TERM "$SERVED_PID"
    wait "$SERVED_PID"
    SERVED_PID=""
done
# The co-run response holds two checksums (one per hart): 3 in total
# with the single-hart microbench run.
if [ "$(printf '%s' "$INTERP_SUMS" | tr ' ' '\n' | grep -c '^0x')" -ne 3 ]; then
    echo "verify: expected 3 guest checksums across the two specs: $INTERP_SUMS" >&2
    exit 1
fi
if [ "$INTERP_SUMS" != "$BLOCK_SUMS" ]; then
    echo "verify: guest checksums diverged across tiers" >&2
    echo "verify: interp: $INTERP_SUMS" >&2
    echo "verify: block:  $BLOCK_SUMS" >&2
    exit 1
fi
echo "verify: microbench checksums identical across tiers ($INTERP_SUMS)"

# Chaos soak: three seeded fault-injection episodes against an
# in-process server; exits nonzero (with a one-line repro) if any
# serving invariant breaks or a fault class never fires.
target/release/soak --seeds 3 --secs 5
echo "verify: chaos soak passed"

# Single-flight coalescing check: a fresh daemon (so the compute
# counter starts at zero) with slow workers and a disk tier, hit with a
# duplicate-heavy burst. Coalescing must collapse the herd: the number
# of actual computes can never exceed the number of unique keys (2).
CACHE_DIR="$(mktemp -d)"
rm -f "$PORT_FILE"
target/release/gem5prof-served --addr 127.0.0.1:0 --deadline-ms 900000 \
    --workers 2 --worker-delay-ms 300 --cache-dir "$CACHE_DIR" \
    --port-file "$PORT_FILE" &
SERVED_PID=$!
i=0
while [ ! -s "$PORT_FILE" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "verify: coalescing daemon never wrote its port file" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$PORT_FILE")"
target/release/loadgen --addr "$ADDR" --clients 8 --requests 4 \
    --paths /tables/table1,/tables/table2 --duplicate-fraction 0.9
# Sum across engine labels (a fresh daemon has exactly one engine).
COMPUTES="$(target/release/servectl --addr "$ADDR" --timeout-ms 5000 metrics \
    | awk '/^gem5prof_result_cache_computes_total/ { s += $2 } END { print s+0 }')"
if [ -z "$COMPUTES" ] || [ "$COMPUTES" -gt 2 ]; then
    echo "verify: coalescing failed — $COMPUTES computes for 2 unique keys" >&2
    exit 1
fi
echo "verify: coalescing collapsed the duplicate burst ($COMPUTES computes for 2 keys)"
kill -TERM "$SERVED_PID"
wait "$SERVED_PID"
SERVED_PID=""
rm -rf "$CACHE_DIR"
echo "verify: coalescing check passed"

# Cluster smoke: 3 daemons behind the consistent-hash router. A
# duplicate-heavy burst through the router must coalesce FLEET-wide
# (the ring gives each key one owner, so total computes <= unique
# keys), and the fleet must survive kill -9 of a whole member
# mid-service: the router ejects it and re-routes, and a second burst
# completes without a single dropped request.
CLUSTER_PORT_FILE="$(mktemp)"
CLUSTER_CACHE="$(mktemp -d)"
CLUSTER_PID=""
cleanup_cluster() {
    if [ -n "$CLUSTER_PID" ]; then
        kill "$CLUSTER_PID" 2>/dev/null || true
        wait "$CLUSTER_PID" 2>/dev/null || true
    fi
    rm -rf "$CLUSTER_PORT_FILE" "$CLUSTER_CACHE"
}
trap 'cleanup; cleanup_cluster' EXIT INT TERM

rm -f "$CLUSTER_PORT_FILE"
target/release/gem5prof-cluster --addr 127.0.0.1:0 --spawn 3 \
    --cache-dir "$CLUSTER_CACHE" --port-file "$CLUSTER_PORT_FILE" \
    --node-arg --deadline-ms --node-arg 900000 \
    --node-arg --workers --node-arg 2 \
    --node-arg --worker-delay-ms --node-arg 300 >&2 &
CLUSTER_PID=$!
i=0
while [ ! -s "$CLUSTER_PORT_FILE" ]; do
    i=$((i + 1))
    if [ "$i" -gt 200 ]; then
        echo "verify: cluster router never wrote its port file" >&2
        exit 1
    fi
    if ! kill -0 "$CLUSTER_PID" 2>/dev/null; then
        echo "verify: cluster router exited before binding" >&2
        exit 1
    fi
    sleep 0.1
done
RADDR="$(cat "$CLUSTER_PORT_FILE")"

# All three members must be admitted before traffic starts.
i=0
until target/release/servectl --addr "$RADDR" --timeout-ms 5000 healthz \
    | grep -q '"members_alive": *3'; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "verify: cluster never reached 3 live members" >&2
        exit 1
    fi
    sleep 0.1
done

target/release/loadgen --addr "$RADDR" --clients 8 --requests 4 \
    --paths /tables/table1,/tables/table2 --duplicate-fraction 0.9

# Fleet-wide computes across every member must not exceed the 2 unique
# keys — the ring plus per-owner single-flight collapse the global herd.
CLUSTER_JSON="$(target/release/servectl --addr "$RADDR" --timeout-ms 5000 cluster status)"
MEMBER_ADDRS="$(printf '%s' "$CLUSTER_JSON" | grep -o '"addr": *"[^"]*"' | cut -d'"' -f4)"
FLEET_COMPUTES=0
for MADDR in $MEMBER_ADDRS; do
    NODE_COMPUTES="$(target/release/servectl --addr "$MADDR" --timeout-ms 5000 metrics \
        | awk '/^gem5prof_result_cache_computes_total/ { s += $2 } END { print s+0 }')"
    FLEET_COMPUTES=$((FLEET_COMPUTES + NODE_COMPUTES))
done
if [ "$FLEET_COMPUTES" -gt 2 ]; then
    echo "verify: cluster coalescing failed — $FLEET_COMPUTES fleet computes for 2 unique keys" >&2
    exit 1
fi
echo "verify: cluster coalesced fleet-wide ($FLEET_COMPUTES computes for 2 keys across 3 nodes)"

# Kill one whole member (SIGKILL: no drain, no goodbye) and burst again.
VICTIM_PID="$(printf '%s' "$CLUSTER_JSON" | grep -o '"pid": *[0-9]*' | head -1 | tr -cd '0-9')"
if [ -z "$VICTIM_PID" ]; then
    echo "verify: /cluster reported no member pids" >&2
    exit 1
fi
kill -9 "$VICTIM_PID"
target/release/loadgen --addr "$RADDR" --clients 8 --requests 4 \
    --paths /tables/table1,/tables/table2 --duplicate-fraction 0.9

# The router must have ejected exactly the dead node.
i=0
until target/release/servectl --addr "$RADDR" --timeout-ms 5000 healthz \
    | grep -q '"members_alive": *2'; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "verify: router never ejected the killed member" >&2
        exit 1
    fi
    sleep 0.1
done
echo "verify: cluster survived node kill (member $VICTIM_PID ejected, burst completed)"

kill -TERM "$CLUSTER_PID"
wait "$CLUSTER_PID" || true
CLUSTER_PID=""
echo "verify: cluster smoke test passed"

# Cluster chaos soak: nodes + router with fault injection armed
# fleet-wide AND a seed-chosen node killed mid-burst; the per-request
# invariants (exactly one response, no poisoned body, graceful drain)
# must hold across re-routing and peer fetch.
target/release/soak --seeds 2 --secs 3 --cluster 3
echo "verify: cluster chaos soak passed"

# Continuous-profiling regression gate: snapshots must survive a daemon
# restart, a clean re-run must pass the hot-span gate against the
# blessed baseline (set GEM5PROF_BLESS=1 to accept a changed baseline
# and re-bless instead of failing), and a daemon whose guest_sim
# accounting is inflated by 2 s per call MUST trip the gate (exit 4).
PROF_DIR="$(mktemp -d)"
cleanup_prof() { rm -rf "$PROF_DIR"; }
trap 'cleanup; cleanup_cluster; cleanup_prof' EXIT INT TERM

# start_prof_daemon [ENV=VAL...] — fresh daemon sharing $PROF_DIR. No
# --cache-dir: every profiling window recomputes, so the span windows
# being diffed contain like-for-like work.
start_prof_daemon() {
    rm -f "$PORT_FILE"
    env "$@" target/release/gem5prof-served --addr 127.0.0.1:0 \
        --deadline-ms 900000 --profile-dir "$PROF_DIR" \
        --port-file "$PORT_FILE" &
    SERVED_PID=$!
    i=0
    while [ ! -s "$PORT_FILE" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "verify: profstore daemon never wrote its port file" >&2
            exit 1
        fi
        sleep 0.1
    done
    ADDR="$(cat "$PORT_FILE")"
}

# The same three specs every window, so per-call self time averages
# over three real computes.
profile_window() {
    for CPU in atomic timing o3; do
        target/release/servectl --addr "$ADDR" --timeout-ms 900000 \
            --post "{\"platform\":\"intel_xeon\",\"workload\":\"dedup\",\"cpu\":\"$CPU\"}" \
            experiments > /dev/null
    done
}

# Window 1: baseline, blessed.
start_prof_daemon
profile_window
target/release/servectl --addr "$ADDR" --timeout-ms 5000 \
    profile snapshot baseline > /dev/null
target/release/servectl --addr "$ADDR" --timeout-ms 5000 profile bless > /dev/null
kill -TERM "$SERVED_PID"
wait "$SERVED_PID"
SERVED_PID=""

# Window 2: restart on the same store — the baseline must have survived
# — then a clean re-run must pass the gate against it.
start_prof_daemon
if ! target/release/servectl --addr "$ADDR" --timeout-ms 5000 profile history \
    | grep -q '"label": "baseline"'; then
    echo "verify: baseline snapshot did not survive the daemon restart" >&2
    exit 1
fi
profile_window
target/release/servectl --addr "$ADDR" --timeout-ms 5000 \
    profile snapshot clean > /dev/null
GATE_RC=0
target/release/servectl --addr "$ADDR" --timeout-ms 5000 profile diff > /dev/null \
    || GATE_RC=$?
if [ "$GATE_RC" -eq 4 ]; then
    if [ "${GEM5PROF_BLESS:-0}" = "1" ]; then
        echo "verify: clean run regressed but GEM5PROF_BLESS=1 — re-blessing latest"
        target/release/servectl --addr "$ADDR" --timeout-ms 5000 \
            profile bless > /dev/null
    else
        echo "verify: hot-span gate failed on a clean re-run" >&2
        echo "verify: (rerun with GEM5PROF_BLESS=1 to accept and re-bless)" >&2
        exit 1
    fi
elif [ "$GATE_RC" -ne 0 ]; then
    echo "verify: profile diff failed (exit $GATE_RC)" >&2
    exit 1
fi
kill -TERM "$SERVED_PID"
wait "$SERVED_PID"
SERVED_PID=""

# Window 3: inflated guest_sim accounting MUST trip the gate.
start_prof_daemon GEM5PROF_SPAN_INFLATE=guest_sim=2000000000
profile_window
target/release/servectl --addr "$ADDR" --timeout-ms 5000 \
    profile snapshot inflated > /dev/null
GATE_RC=0
target/release/servectl --addr "$ADDR" --timeout-ms 5000 profile diff > /dev/null \
    || GATE_RC=$?
if [ "$GATE_RC" -ne 4 ]; then
    echo "verify: gate did not catch a 2 s/call guest_sim inflation (exit $GATE_RC)" >&2
    exit 1
fi
kill -TERM "$SERVED_PID"
wait "$SERVED_PID"
SERVED_PID=""
echo "verify: profstore regression gate passed"
