#!/usr/bin/env sh
# Tier-1 verification: build, test, and format-check the whole workspace
# fully offline (the workspace has zero external dependencies), then
# smoke-test the serving daemon end to end.
set -eu
cd "$(dirname "$0")/.."

# --workspace so member binaries (gem5prof-served, servectl, loadgen)
# are built too — the root package alone does not pull them in.
cargo build --release --offline --workspace
# The root suite includes the golden-output regression tests
# (tests/golden_repro.rs) — every quick-fidelity figure/table diffed
# byte-for-byte against tests/golden/, under both execution tiers —
# and the interp-vs-block differential gate (tests/exec_tier_diff.rs):
# kernels, fuzzed programs, multi-hart, and starved block caches.
cargo test -q --offline
cargo test -q --offline -p gem5prof-served
cargo fmt --check

# Cross-tier equivalence smoke on the bare engine: exec_tier_bench
# exits nonzero if any (workload, CPU model) cell diverges between the
# interp and block tiers.
target/release/exec_tier_bench --scale simsmall --reps 1

# Block-tier determinism: full quick-fidelity artifact regeneration
# must be byte-identical across runs and across runner thread counts
# (batching decisions depend only on guest state, never on host timing).
DET_A="$(mktemp)"
DET_B="$(mktemp)"
GEM5PROF_EXEC_TIER=block GEM5PROF_THREADS=1 \
    target/release/repro all --quick > "$DET_A"
GEM5PROF_EXEC_TIER=block GEM5PROF_THREADS=4 \
    target/release/repro all --quick > "$DET_B"
if ! cmp -s "$DET_A" "$DET_B"; then
    echo "verify: block tier output differs across thread counts" >&2
    diff "$DET_A" "$DET_B" | head -20 >&2 || true
    rm -f "$DET_A" "$DET_B"
    exit 1
fi
rm -f "$DET_A" "$DET_B"
echo "verify: block tier byte-identical across thread counts"

# Serving smoke test: boot the daemon on an ephemeral port, probe it
# with servectl, then drain it gracefully with SIGTERM.
PORT_FILE="$(mktemp)"
SERVED_PID=""
cleanup() {
    if [ -n "$SERVED_PID" ]; then
        kill "$SERVED_PID" 2>/dev/null || true
    fi
    rm -f "$PORT_FILE"
}
trap cleanup EXIT INT TERM

rm -f "$PORT_FILE"
# A cold quick-fidelity fig01 can exceed the default 30 s request
# deadline on a slow single-core machine; the smoke test is about
# correctness, not latency, so give the daemon a generous deadline.
target/release/gem5prof-served --addr 127.0.0.1:0 --deadline-ms 900000 \
    --port-file "$PORT_FILE" &
SERVED_PID=$!

i=0
while [ ! -s "$PORT_FILE" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "verify: daemon never wrote its port file" >&2
        exit 1
    fi
    if ! kill -0 "$SERVED_PID" 2>/dev/null; then
        echo "verify: daemon exited before binding" >&2
        exit 1
    fi
    sleep 0.1
done

ADDR="$(cat "$PORT_FILE")"
target/release/servectl --addr "$ADDR" --timeout-ms 5000 healthz

# Observability smoke: scrape /metrics before and after a figure
# request and check the served-request counter actually incremented.
scrape_requests() {
    target/release/servectl --addr "$ADDR" --timeout-ms 5000 metrics \
        | awk '$1 == "gem5prof_served_requests_total" { print $2 }'
}
BEFORE="$(scrape_requests)"
if [ -z "$BEFORE" ]; then
    echo "verify: /metrics is missing gem5prof_served_requests_total" >&2
    exit 1
fi
target/release/servectl --addr "$ADDR" --timeout-ms 900000 \
    'figures/fig01?fidelity=quick' > /dev/null
AFTER="$(scrape_requests)"
if [ "$AFTER" -le "$BEFORE" ]; then
    echo "verify: request counter did not increment ($BEFORE -> $AFTER)" >&2
    exit 1
fi
echo "verify: /metrics counter incremented ($BEFORE -> $AFTER)"

kill -TERM "$SERVED_PID"
wait "$SERVED_PID"
SERVED_PID=""
echo "verify: serving smoke test passed"

# Chaos soak: three seeded fault-injection episodes against an
# in-process server; exits nonzero (with a one-line repro) if any
# serving invariant breaks or a fault class never fires.
target/release/soak --seeds 3 --secs 5
echo "verify: chaos soak passed"

# Single-flight coalescing check: a fresh daemon (so the compute
# counter starts at zero) with slow workers and a disk tier, hit with a
# duplicate-heavy burst. Coalescing must collapse the herd: the number
# of actual computes can never exceed the number of unique keys (2).
CACHE_DIR="$(mktemp -d)"
rm -f "$PORT_FILE"
target/release/gem5prof-served --addr 127.0.0.1:0 --deadline-ms 900000 \
    --workers 2 --worker-delay-ms 300 --cache-dir "$CACHE_DIR" \
    --port-file "$PORT_FILE" &
SERVED_PID=$!
i=0
while [ ! -s "$PORT_FILE" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "verify: coalescing daemon never wrote its port file" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$PORT_FILE")"
target/release/loadgen --addr "$ADDR" --clients 8 --requests 4 \
    --paths /tables/table1,/tables/table2 --duplicate-fraction 0.9
# Sum across engine labels (a fresh daemon has exactly one engine).
COMPUTES="$(target/release/servectl --addr "$ADDR" --timeout-ms 5000 metrics \
    | awk '/^gem5prof_result_cache_computes_total/ { s += $2 } END { print s+0 }')"
if [ -z "$COMPUTES" ] || [ "$COMPUTES" -gt 2 ]; then
    echo "verify: coalescing failed — $COMPUTES computes for 2 unique keys" >&2
    exit 1
fi
echo "verify: coalescing collapsed the duplicate burst ($COMPUTES computes for 2 keys)"
kill -TERM "$SERVED_PID"
wait "$SERVED_PID"
SERVED_PID=""
rm -rf "$CACHE_DIR"
echo "verify: coalescing check passed"
