#!/usr/bin/env sh
# Tier-1 verification: build, test, and format-check the whole workspace
# fully offline (the workspace has zero external dependencies).
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo fmt --check
